#include "service/signals.h"

#include <atomic>
#include <csignal>

#include "ckpt/budget.h"

namespace rfid::service {

namespace {

volatile std::sig_atomic_t g_stop_signal = 0;
std::atomic<ckpt::CancelToken*> g_token{nullptr};

extern "C" void stopHandler(int sig) {
  if (g_stop_signal == 0) g_stop_signal = sig;
  // CancelToken::cancel is one relaxed store on a lock-free atomic<bool> —
  // async-signal-safe per POSIX's lock-free-atomic carve-out.
  ckpt::CancelToken* t = g_token.load(std::memory_order_relaxed);
  if (t != nullptr) t->cancel();
}

}  // namespace

void installStopSignalHandlers(ckpt::CancelToken* token) {
  g_token.store(token, std::memory_order_relaxed);
#if defined(_WIN32)
  std::signal(SIGTERM, stopHandler);
  std::signal(SIGINT, stopHandler);
#else
  struct sigaction sa = {};
  sa.sa_handler = stopHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must wake with EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
#endif
}

int stopSignal() { return static_cast<int>(g_stop_signal); }

void resetStopSignalsForTest() {
  g_stop_signal = 0;
  g_token.store(nullptr, std::memory_order_relaxed);
}

}  // namespace rfid::service
