// growth_distributed.h — Algorithm 3: distributed scheduling without
// location information (paper §V-B).
//
// The faithful message-passing rendition of Algorithm 2, run by node
// programs on the network simulator:
//
//  Step 1  Every reader floods INFO (its standalone weight, neighbor list,
//          and unread-tag coverage) through its (2c+2)-hop neighborhood.
//  Step 2  A White reader that holds the strict maximum weight among the
//          White readers it knows within 2c+2 hops becomes a *coordinator*
//          (head) and computes Γ_0, Γ_1, … locally — exact MWFS over its
//          collected r-hop neighborhoods — until inequality (1)
//          w(Γ_{r+1}) ≥ ρ·w(Γ_r) first fails (or the cap c is reached,
//          Theorem 5's constant).
//  Step 3  The head floods RESULT(Γ_r̄, N^{r̄+1}) through r̄+1+2c+2 hops.
//          Receivers in Γ turn Red (selected), receivers in N^{r̄+1} turn
//          Black (suppressed); everyone else records the removals and
//          re-evaluates headship (Algorithm 3, line 19).
//
// Ties on weight are broken by reader id, which makes headship a strict
// total order and guarantees progress.  Readers whose standalone weight is
// zero can never be heads or members; they stay as relays until some head's
// removal wave covers them.
//
// The (2c+2)-hop separation between simultaneous coordinators guarantees
// that independently computed Γ's are pairwise non-adjacent, hence their
// union is feasible (Theorem 6) — the tests assert exactly this.
#pragma once

#include <cstdint>

#include "distributed/network.h"
#include "graph/interference_graph.h"
#include "sched/scheduler.h"

namespace rfid::dist {

struct DistributedGrowthOptions {
  /// ρ = 1 + ε of inequality (1).
  double rho = 1.25;
  /// The growth-bound constant c (Theorem 5): hard cap on r̄ and the radius
  /// driving the (2c+2)-hop information collection.
  int c = 3;
  /// Node budget per local exact MWFS (0 = unlimited).
  std::int64_t node_limit = 2'000'000;
  /// Safety cap on simulated rounds per one-shot execution.
  int max_rounds = 100000;
  /// Symmetry-breaking salt: coordinators hold their fire for
  /// hash(id, salt) % 3 extra rounds, so coordinators that would fire in
  /// the same round usually serialize and see each other's RESULTs.  The
  /// scheduler advances the salt every slot, which prevents two slots from
  /// deadlocking on the identical simultaneous-coordinator pattern.
  std::uint64_t salt = 0;
  /// Fault hardening (armed only when a channel model is attached).  A
  /// White node blocked on a higher-weight rival whose RESULT never
  /// arrives — crashed mid-protocol, or the flood was dropped — re-floods
  /// its INFO after `retry_patience` blocked rounds (backoff doubles per
  /// retry); heads answer retries by re-flooding their RESULT.  After
  /// `max_retries` unanswered retries the silent rival is evicted from
  /// headship consideration, so some live node always fires and the
  /// quiescence detector cannot deadlock.  retry_patience 0 disables.
  int retry_patience = 16;
  int max_retries = 3;
};

class GrowthDistributedScheduler final : public sched::OneShotScheduler {
 public:
  /// `g` must be the interference graph of the system passed to schedule().
  GrowthDistributedScheduler(const graph::InterferenceGraph& g,
                             DistributedGrowthOptions opt = {});

  std::string name() const override { return "Alg3"; }
  sched::OneShotResult schedule(const core::System& sys) override;

  /// The per-slot symmetry-breaking salt is Algorithm 3's only cross-slot
  /// state (the protocol network is rebuilt every slot), so it *is* the
  /// RNG cursor a checkpoint replay must land on (ckpt/journal.h).
  std::uint64_t stateFingerprint() const override { return opt_.salt; }

  /// Forwards a fault channel model to the per-slot protocol networks.
  void attachChannel(fault::ChannelModel* channel) override {
    channel_ = channel;
  }

  struct Stats {
    int rounds = 0;
    std::int64_t messages = 0;
    std::int64_t payload_words = 0;
    int heads = 0;       // coordinators that fired
    int max_rbar = 0;    // largest Γ radius across heads
    bool quiesced = false;
    // Fault-hardening activity (zero on a clean substrate).
    int info_retries = 0;    // blocked-node INFO re-floods
    int evicted_rivals = 0;  // rivals presumed crashed and skipped
  };
  const Stats& lastStats() const { return stats_; }

 private:
  const graph::InterferenceGraph* graph_;
  DistributedGrowthOptions opt_;
  fault::ChannelModel* channel_ = nullptr;
  Stats stats_;
  /// Sensing graph used as the message topology; built lazily from the
  /// first schedule() call's System and reused across slots.
  std::unique_ptr<graph::InterferenceGraph> comm_;
};

}  // namespace rfid::dist
