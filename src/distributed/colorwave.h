// colorwave.h — the Colorwave baseline (CA), Waldrop/Engels/Sarma WCNC'03.
//
// Colorwave is a distributed TDMA MAC for reader networks: each reader
// holds a color (time-slot index) in [0, maxColors).  Readers announce
// their colors to interference-graph neighbors; on a collision (neighbor
// with the same color) exactly one contender wins — the kick rule, decided
// here by a per-broadcast random priority with id tie-break — and the
// losers re-pick uniformly at random.  Each reader monitors its recent
// collision percentage and grows maxColors when collisions are frequent
// ("unsafe") or shrinks it when they are rare ("safe"), which is
// Colorwave's distributed frame-size adaptation.
//
// As a one-shot scheduler, slot t activates one color class (classes rotate
// round-robin).  The protocol keeps running between slots, exactly like a
// deployed Colorwave network; classes proposed before convergence may be
// improper, and the Definition 1 referee then charges the resulting RTc
// losses — that, plus its weight-blindness, is why the paper's algorithms
// beat it (Figures 6–9).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "distributed/network.h"
#include "graph/interference_graph.h"
#include "sched/scheduler.h"

namespace rfid::dist {

struct ColorwaveOptions {
  int initial_max_colors = 4;
  int min_colors = 1;
  int max_colors_cap = 64;
  /// Sliding window (rounds) for the collision percentage.
  int window = 16;
  /// Collision fraction above which a node increments maxColors ("unsafe").
  double up_threshold = 0.40;
  /// Collision fraction below which a node decrements maxColors ("safe").
  /// 0 disables downward probing: real Colorwave keeps hunting for fewer
  /// colors, which periodically re-introduces conflicts; the benchmarks
  /// want stable TDMA classes once converged, so shrinking is opt-in
  /// (bench/ablation notes discuss the effect).
  double down_threshold = 0.0;
  /// Protocol rounds executed before the first slot is drawn.
  int settle_rounds = 1000;
  /// Protocol rounds executed between consecutive slots.
  int rounds_between_slots = 10;
  /// Fault hardening (armed only when a channel model is attached to the
  /// protocol network): a neighbor silent for this many consecutive rounds
  /// is presumed crashed and evicted from the collision bookkeeping; its
  /// next announcement re-admits it (recovery).  Announcements then also
  /// carry a version word so duplicated or delayed copies of an old color
  /// cannot trigger spurious re-picks.  0 disables silence detection.
  int silence_timeout = 64;
};

class ColorwaveScheduler final : public sched::OneShotScheduler {
 public:
  /// Runs the protocol over an explicit conflict graph (synthetic
  /// topologies, unit tests).  The caller keeps `g` alive.
  ColorwaveScheduler(const graph::InterferenceGraph& g, std::uint64_t seed,
                     ColorwaveOptions opt = {});

  /// Production form: derives the conflict graph from the system as the
  /// *sensing* graph (interference disks intersect).  Waldrop et al. count
  /// every failed read attempt as a collision — including reader–reader
  /// collisions observed at tags — so two readers able to RRc-collide must
  /// contend for different colors, which is exactly sensing-graph
  /// adjacency.
  ColorwaveScheduler(const core::System& sys, std::uint64_t seed,
                     ColorwaveOptions opt = {});

  ~ColorwaveScheduler() override;

  std::string name() const override { return "CA"; }
  sched::OneShotResult schedule(const core::System& sys) override;

  /// Hash of the current coloring and the slot cursor — the cross-slot
  /// state a checkpoint replay must reproduce (ckpt/journal.h).  Not a full
  /// protocol-state serialization (windows, priorities, RNG streams):
  /// replay recomputes those from scratch; the fingerprint detects drift.
  std::uint64_t stateFingerprint() const override;

  /// Runs `rounds` protocol rounds without drawing a slot (used by tests
  /// and by the k-coloring channel baseline built on this protocol).
  void runProtocol(int rounds) { advance(rounds); }

  /// Forwards a fault channel model to the long-lived protocol network;
  /// node programs arm their silence-eviction / stale-filter hardening.
  void attachChannel(fault::ChannelModel* channel) override;

  /// Current color per node (diagnostics / tests).
  std::vector<int> colors() const;
  /// True iff the current coloring is proper on the interference graph.
  bool converged() const;
  /// Proper on the subgraph of nodes alive in the channel's current slot
  /// (all nodes when no channel is attached) — the honest convergence
  /// criterion once readers can crash: dead readers do not transmit.
  bool convergedAmongAlive() const;
  /// Total neighbor evictions by silence detection (diagnostics / tests).
  int evictedNeighborLinks() const;

  struct Stats {
    std::int64_t protocol_rounds = 0;
    std::int64_t messages = 0;
  };
  const Stats& stats() const { return stats_; }

  /// The long-lived protocol network; `network().stats()` exposes lifetime
  /// rounds / messages / payload words (examples/distributed_deployment
  /// reports them as the communication bill).
  const Network& network() const { return *net_; }

 private:
  void init(std::uint64_t seed);
  void advance(int rounds);

  std::unique_ptr<graph::InterferenceGraph> owned_graph_;  // sensing form
  const graph::InterferenceGraph* graph_;
  ColorwaveOptions opt_;
  std::unique_ptr<Network> net_;
  Stats stats_;
  int slot_counter_ = 0;
  bool settled_ = false;
};

}  // namespace rfid::dist
