// network.h — synchronous message-passing simulator over the interference
// graph.
//
// The distributed algorithms (Algorithm 3, Colorwave) are implemented as
// *node programs*: per-reader state machines that exchange messages only
// with graph neighbors.  The simulator runs synchronous rounds — messages
// sent in round t are delivered at round t+1 — and accounts every message
// and payload word, so the benchmarks can report communication cost, not
// just schedule quality.
//
// This is the "no central entity" substrate the paper's §V-B asks for: node
// programs see their own id, their neighbor list, and their inbox.  Nothing
// else.  Any global scan in a node program is a bug, and the tests enforce
// delivery discipline (messages only along edges, one-round latency).
//
// An optional fault::ChannelModel (attachChannel) makes the substrate
// lossy: sends may be dropped, duplicated, or delayed extra rounds, and
// nodes crashed by the fault plan neither execute nor receive.  Quiescence
// then also requires the delayed queue to drain — a delayed copy still in
// the pipe is in flight even if every live program is done.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ckpt/budget.h"
#include "fault/channel_model.h"
#include "graph/interference_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfid::dist {

/// A message on the wire.  `type` and `data` are algorithm-defined.
struct Message {
  int from = -1;
  int to = -1;
  int type = 0;
  std::vector<int> data;
};

class Network;

/// Per-node view handed to programs each round.
class Context {
 public:
  int self() const { return self_; }
  int round() const { return round_; }
  std::span<const int> neighbors() const { return neighbors_; }

  /// Queues a message for delivery next round.  `to` must be a neighbor.
  void send(int to, int type, std::vector<int> data);

  /// Sends the same message to every neighbor.
  void broadcast(int type, const std::vector<int>& data);

  /// True when a channel model is attached: links may lose, duplicate, or
  /// delay messages and neighbors may be crashed.  Node programs use this
  /// to arm their timeout/retry hardening (and to extend their wire format)
  /// only when faults are possible, so fault-free runs stay bit-identical.
  bool lossy() const;

 private:
  friend class Network;
  Context(Network& net, int self, int round, std::span<const int> neighbors)
      : net_(&net), self_(self), round_(round), neighbors_(neighbors) {}

  Network* net_;
  int self_;
  int round_;
  std::span<const int> neighbors_;
};

/// A distributed algorithm's per-node state machine.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// Called once before round 0 (e.g. to queue initial broadcasts).
  virtual void init(Context& ctx) = 0;

  /// Called every round with the messages delivered this round.
  virtual void onRound(Context& ctx, std::span<const Message> inbox) = 0;

  /// True when the node has reached a terminal state.  The network stops
  /// when every node is done *and* no message is in flight.
  virtual bool isDone() const = 0;
};

class Network {
 public:
  /// Topology must outlive the network.  One program per node, in id order.
  Network(const graph::InterferenceGraph& topology,
          std::vector<std::unique_ptr<NodeProgram>> programs);

  struct RunStats {
    int rounds = 0;
    std::int64_t messages = 0;      // message-hops delivered
    std::int64_t payload_words = 0; // total ints carried
    bool all_done = false;
    // Channel-model accounting; all zero unless a channel is attached.
    std::int64_t dropped = 0;     // sends lost on the wire
    std::int64_t duplicated = 0;  // extra copies delivered
    std::int64_t delayed = 0;     // copies deferred past one-round latency
    std::int64_t dead_drops = 0;  // deliveries discarded at a crashed node
  };

  /// Runs until quiescence (all live programs done, no messages in flight
  /// or delayed) or `max_rounds`.  Crashed nodes — per the attached channel
  /// model — neither execute nor receive, and count as done: a dead
  /// neighbor can never block quiescence.  `cancel` (optional) is polled at
  /// every round boundary; a fired token stops the run early with the
  /// rounds completed so far (protocol state stays consistent — rounds are
  /// atomic).
  RunStats run(int max_rounds, const ckpt::CancelToken* cancel = nullptr);

  /// Lifetime totals across every run() on this network (run() returns the
  /// per-run slice).  `rounds`/`messages`/`payload_words` accumulate;
  /// `all_done` reflects the most recent run.
  const RunStats& stats() const { return totals_; }

  /// Observability (nullptrs detach).  With `metrics` each run() adds the
  /// counters `net.rounds` / `net.messages` / `net.payload_words` and sets
  /// the gauges `net.last_run_rounds` and `net.converged_round` (-1 while
  /// not quiescent).  With `trace` every synchronous round emits a kRound
  /// event carrying delivered/in-flight message counts.
  void attachObs(obs::MetricsRegistry* metrics, obs::TraceSink* trace);

  /// Attaches a channel model (nullptr detaches).  With one attached every
  /// send consults it for drop/duplicate/delay fates, crashed nodes stop
  /// executing, and each run() additionally reports the counters
  /// `fault.net.dropped` / `fault.net.duplicated` / `fault.net.delayed` /
  /// `fault.net.dead_drops` plus one kFault trace event when any fault
  /// fired.  Detached networks skip all of it.
  void attachChannel(fault::ChannelModel* channel) { channel_ = channel; }
  fault::ChannelModel* channel() const { return channel_; }

  NodeProgram& program(int v) { return *programs_[static_cast<std::size_t>(v)]; }
  const NodeProgram& program(int v) const { return *programs_[static_cast<std::size_t>(v)]; }
  int numNodes() const { return topology_->numNodes(); }

 private:
  friend class Context;
  void enqueue(Message m);

  struct Delayed {
    int rounds_left = 0;  // rounds beyond the normal one-round latency
    Message msg;
  };

  const graph::InterferenceGraph* topology_;
  std::vector<std::unique_ptr<NodeProgram>> programs_;
  std::vector<Message> in_flight_;   // sent this round, delivered next
  std::vector<Delayed> delayed_;     // channel-deferred, drained by run()
  RunStats stats_;
  RunStats totals_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  fault::ChannelModel* channel_ = nullptr;
};

}  // namespace rfid::dist
