#include "distributed/growth_distributed.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "obs/timer.h"
#include "sched/exact.h"
#include "workload/rng.h"

namespace rfid::dist {

namespace {

enum MsgType : int { kInfo = 1, kResult = 2 };

// INFO payload: [origin, weight, ttl, deg, neighbors..., ntags, tags...]
// RESULT payload: [head, ttl, |gamma|, gamma..., |removed|, removed...]
//
// On a lossy substrate (fault channel attached) INFO carries an extra epoch
// word after ttl: [origin, weight, ttl, epoch, deg, ...].  Epoch 0 is the
// initial flood; a blocked node re-floods with a bumped epoch, and relays
// forward any epoch newer than the last one they saw from that origin, so
// retries re-propagate through nodes that already hold the record.

struct InfoRecord {
  int weight = 0;
  std::vector<int> neighbors;
  std::vector<int> tags;
};

enum class NodeState { kWhite, kRed, kBlack };

class GrowthNode final : public NodeProgram {
 public:
  GrowthNode(int self, int weight, std::vector<int> tags,
             std::vector<int> neighbors, const DistributedGrowthOptions& opt)
      : self_(self), weight_(weight), opt_(opt) {
    InfoRecord mine;
    mine.weight = weight;
    mine.neighbors = std::move(neighbors);
    mine.tags = std::move(tags);
    info_.emplace(self, std::move(mine));
    // Zero-weight readers can never be heads or Γ members; they park as
    // Black relays immediately (they still forward floods below).
    if (weight_ == 0) state_ = NodeState::kBlack;
  }

  void init(Context& ctx) override {
    lossy_ = ctx.lossy();
    const InfoRecord& mine = info_.at(self_);
    ctx.broadcast(kInfo, encodeInfo(self_, weight_, collectRadius(), 0,
                                    mine.neighbors, mine.tags));
  }

  void onRound(Context& ctx, std::span<const Message> inbox) override {
    for (const Message& m : inbox) {
      if (m.type == kInfo) {
        handleInfo(ctx, m);
      } else {
        handleResult(ctx, m);
      }
    }
    // Step 2: headship check once the (2c+2)-hop collection has settled.
    // The per-slot fire delay staggers coordinators that would otherwise
    // fire simultaneously without seeing each other's selections.
    const int delay = static_cast<int>(
        workload::splitmix64(static_cast<std::uint64_t>(self_) ^ opt_.salt) % 3);
    if (state_ == NodeState::kWhite && !fired_ &&
        ctx.round() >= collectRadius() + delay) {
      maybeBecomeHead(ctx);
      // Still White after the check means a rival we cannot hear from holds
      // headship over us; on a lossy substrate that silence may be a crash
      // or a dropped RESULT, so the blocked-retry/eviction clock runs.
      if (lossy_ && opt_.retry_patience > 0 && state_ == NodeState::kWhite &&
          !fired_) {
        handleBlocked(ctx);
      }
    }
  }

  bool isDone() const override { return state_ != NodeState::kWhite; }

  NodeState state() const { return state_; }
  bool wasHead() const { return fired_; }
  int rbar() const { return rbar_; }
  std::int64_t bnbNodes() const { return bnb_nodes_; }
  int infoRetries() const { return retries_total_; }
  int evictions() const { return evictions_; }

 private:
  int collectRadius() const { return 2 * opt_.c + 2; }

  std::vector<int> encodeInfo(int origin, int weight, int ttl, int epoch,
                              const std::vector<int>& neighbors,
                              const std::vector<int>& tags) const {
    std::vector<int> d;
    d.reserve(5 + neighbors.size() + 1 + tags.size());
    d.push_back(origin);
    d.push_back(weight);
    d.push_back(ttl);
    if (lossy_) d.push_back(epoch);
    d.push_back(static_cast<int>(neighbors.size()));
    d.insert(d.end(), neighbors.begin(), neighbors.end());
    d.push_back(static_cast<int>(tags.size()));
    d.insert(d.end(), tags.begin(), tags.end());
    return d;
  }

  void handleInfo(Context& ctx, const Message& m) {
    std::size_t p = 0;
    const int origin = m.data[p++];
    const int w = m.data[p++];
    const int ttl = m.data[p++];
    const int epoch = lossy_ ? m.data[p++] : 0;
    if (info_.count(origin) != 0) {
      if (!lossy_) return;  // already known; drop duplicate
      // Known origin: a newer epoch is a retry from a live but stuck node.
      // Forward it (relays already hold the record, so the initial-flood
      // dedup would otherwise smother the retry), answer it if we are a
      // fired head (our RESULT may be exactly what the origin lost), and
      // treat it as proof of life for an evicted rival.
      auto& last_epoch = info_epoch_[origin];
      if (epoch <= last_epoch) return;
      last_epoch = epoch;
      evicted_.erase(origin);
      blocked_rounds_ = 0;
      if (fired_ && origin != self_ && !result_payload_.empty()) {
        ctx.broadcast(kResult, result_payload_);
      }
      if (ttl > 1) {
        const InfoRecord& rec = info_.at(origin);
        ctx.broadcast(kInfo, encodeInfo(origin, rec.weight, ttl - 1, epoch,
                                        rec.neighbors, rec.tags));
      }
      return;
    }
    InfoRecord rec;
    rec.weight = w;
    const int deg = m.data[p++];
    rec.neighbors.assign(m.data.begin() + static_cast<std::ptrdiff_t>(p),
                         m.data.begin() + static_cast<std::ptrdiff_t>(p + static_cast<std::size_t>(deg)));
    p += static_cast<std::size_t>(deg);
    const int ntags = m.data[p++];
    rec.tags.assign(m.data.begin() + static_cast<std::ptrdiff_t>(p),
                    m.data.begin() + static_cast<std::ptrdiff_t>(p + static_cast<std::size_t>(ntags)));
    info_.emplace(origin, std::move(rec));
    if (lossy_) {
      info_epoch_[origin] = epoch;
      blocked_rounds_ = 0;
    }
    if (ttl > 1) {
      ctx.broadcast(kInfo, encodeInfo(origin, w, ttl - 1, epoch,
                                      info_.at(origin).neighbors,
                                      info_.at(origin).tags));
    }
  }

  void handleResult(Context& ctx, const Message& m) {
    std::size_t p = 0;
    const int head = m.data[p++];
    const int ttl = m.data[p++];
    blocked_rounds_ = 0;  // any RESULT traffic is protocol progress
    if (seen_results_.count(head) != 0) return;
    seen_results_.insert(head);
    const int ng = m.data[p++];
    std::vector<int> gamma(m.data.begin() + static_cast<std::ptrdiff_t>(p),
                           m.data.begin() + static_cast<std::ptrdiff_t>(p + static_cast<std::size_t>(ng)));
    p += static_cast<std::size_t>(ng);
    const int nr = m.data[p++];
    std::vector<int> removed(m.data.begin() + static_cast<std::ptrdiff_t>(p),
                             m.data.begin() + static_cast<std::ptrdiff_t>(p + static_cast<std::size_t>(nr)));

    applyResult(gamma, removed);
    if (ttl > 1) {
      std::vector<int> relay = m.data;
      relay[1] = ttl - 1;
      ctx.broadcast(kResult, relay);
    }
  }

  void applyResult(const std::vector<int>& gamma,
                   const std::vector<int>& removed) {
    for (const int u : removed) removed_.insert(u);
    for (const int u : gamma) {
      removed_.insert(u);
      selected_.insert(u);
    }
    if (state_ != NodeState::kWhite) return;
    if (std::find(gamma.begin(), gamma.end(), self_) != gamma.end()) {
      state_ = NodeState::kRed;  // selected for this slot
    } else if (removed_.count(self_) != 0) {
      state_ = NodeState::kBlack;  // suppressed by a nearby coordinator
    }
  }

  /// BFS over collected knowledge, relaying only through non-removed nodes
  /// (the paper deletes N^{r̄+1} from G; deleted nodes carry no hops).
  /// Returns hop distance per known node id; nodes without collected INFO
  /// are unreachable by construction.
  std::unordered_map<int, int> localBfs(int max_hops) const {
    std::unordered_map<int, int> dist;
    dist.emplace(self_, 0);
    std::queue<int> q;
    q.push(self_);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      const int du = dist.at(u);
      if (du >= max_hops) continue;
      const auto it = info_.find(u);
      if (it == info_.end()) continue;
      for (const int v : it->second.neighbors) {
        if (removed_.count(v) != 0 || dist.count(v) != 0) continue;
        dist.emplace(v, du + 1);
        q.push(v);
      }
    }
    return dist;
  }

  void maybeBecomeHead(Context& ctx) {
    // Strict (weight, id) maximum among the White readers this node has
    // collected INFO from.  Collection travels over the sensing graph, so
    // rivals in other interference-graph components — but close enough to
    // RRc-collide — are visible here and serialize instead of firing
    // concurrently.
    if (blockingRival() >= 0) return;  // a larger White rival exists; defer
    becomeHead(ctx);
  }

  /// The strict (weight, id) maximum among known White rivals that outrank
  /// this node, or -1 when none does (then this node may fire).  Rivals
  /// evicted by the retry clock are skipped — they are presumed crashed.
  int blockingRival() const {
    int best = -1;
    std::pair<int, int> best_key{weight_, self_};
    for (const auto& [u, rec] : info_) {
      if (u == self_) continue;
      if (rec.weight == 0) continue;         // idle relay, never a rival
      if (removed_.count(u) != 0) continue;  // no longer White
      if (evicted_.count(u) != 0) continue;  // presumed crashed
      if (std::pair(rec.weight, u) > best_key) {
        best = u;
        best_key = {rec.weight, u};
      }
    }
    return best;
  }

  /// Lossy-mode liveness: a White node stuck behind a silent rival re-floods
  /// its INFO with a bumped epoch (patience doubles per retry); fired heads
  /// answer such retries by re-flooding their RESULT.  When the retry budget
  /// is spent the rival is evicted from headship consideration, so the
  /// strict (weight, id) order over the *live* nodes keeps making progress
  /// and quiescence cannot deadlock on a crashed coordinator.
  void handleBlocked(Context& ctx) {
    ++blocked_rounds_;
    const int patience = opt_.retry_patience << std::min(retries_, 8);
    if (blocked_rounds_ < patience) return;
    blocked_rounds_ = 0;
    if (retries_ < opt_.max_retries) {
      ++retries_;
      ++retries_total_;
      ++epoch_;
      const InfoRecord& mine = info_.at(self_);
      ctx.broadcast(kInfo, encodeInfo(self_, weight_, collectRadius(), epoch_,
                                      mine.neighbors, mine.tags));
      return;
    }
    const int rival = blockingRival();
    if (rival >= 0) {
      evicted_.insert(rival);
      ++evictions_;
    }
    retries_ = 0;  // fresh retry budget against the next blocker, if any
  }

  void becomeHead(Context& ctx) {
    fired_ = true;
    // Grow Γ_r per inequality (1) over collected knowledge, scored
    // *marginally* to the selections this node has learned about: readers
    // chosen by earlier coordinators may share interrogation area with our
    // candidates, and double-covering their tags scores negative.
    const sched::BnbResult own = solveOn({self_});
    std::vector<int> gamma = own.members;
    int gamma_w = own.weight;
    rbar_ = 0;
    for (int r = 0; r < opt_.c; ++r) {
      const auto dist = localBfs(r + 1);
      std::vector<int> candidates;
      for (const auto& [u, d] : dist) {
        const auto it = info_.find(u);
        if (it != info_.end() && it->second.weight > 0) candidates.push_back(u);
      }
      std::sort(candidates.begin(), candidates.end());
      const sched::BnbResult next = solveOn(candidates);
      if (static_cast<double>(next.weight) <
          opt_.rho * static_cast<double>(gamma_w)) {
        break;
      }
      gamma = next.members;
      gamma_w = next.weight;
      rbar_ = r + 1;
    }

    // N^{r̄+1} over the residual graph becomes the removal wave.  When the
    // marginal optimum is empty (everything this region could read is
    // already claimed), only this node retires — suppressing neighbors
    // would throw away readers other coordinators may still want.
    std::vector<int> removed;
    if (gamma.empty()) {
      removed.push_back(self_);
    } else {
      for (const auto& [u, d] : localBfs(rbar_ + 1)) removed.push_back(u);
    }
    std::sort(removed.begin(), removed.end());
    std::sort(gamma.begin(), gamma.end());

    applyResult(gamma, removed);
    if (state_ == NodeState::kWhite) state_ = NodeState::kBlack;
    seen_results_.insert(self_);

    std::vector<int> d;
    d.reserve(4 + gamma.size() + removed.size());
    d.push_back(self_);
    d.push_back(rbar_ + 1 + collectRadius());
    d.push_back(static_cast<int>(gamma.size()));
    d.insert(d.end(), gamma.begin(), gamma.end());
    d.push_back(static_cast<int>(removed.size()));
    d.insert(d.end(), removed.begin(), removed.end());
    // Keep the flood payload around on a lossy substrate: an epoch'd INFO
    // retry from a node our wave never reached gets answered with exactly
    // this message (targeted recovery instead of a timed rebroadcast).
    if (lossy_) result_payload_ = d;
    ctx.broadcast(kResult, d);
  }

  /// Exact MWFS over `candidates` using only message-collected knowledge:
  /// conflict edges from the exchanged neighbor lists, weights from the
  /// exchanged unread-tag ids (shared ids model RRc overlap), marginal to
  /// the coverage of already-selected readers we know about.
  sched::BnbResult solveOn(const std::vector<int>& candidates) const {
    sched::LocalProblem p;
    for (const int s : selected_) {
      const auto it = info_.find(s);
      if (it == info_.end()) continue;
      p.preload.insert(p.preload.end(), it->second.tags.begin(),
                       it->second.tags.end());
    }
    const int n = static_cast<int>(candidates.size());
    p.adj.resize(static_cast<std::size_t>(n));
    p.coverage.resize(static_cast<std::size_t>(n));
    std::unordered_map<int, int> local_index;
    for (int i = 0; i < n; ++i) local_index.emplace(candidates[static_cast<std::size_t>(i)], i);
    for (int i = 0; i < n; ++i) {
      const InfoRecord& rec = info_.at(candidates[static_cast<std::size_t>(i)]);
      p.coverage[static_cast<std::size_t>(i)] = rec.tags;
      for (const int u : rec.neighbors) {
        const auto it = local_index.find(u);
        if (it != local_index.end() && it->second > i) {
          p.adj[static_cast<std::size_t>(i)].push_back(it->second);
          p.adj[static_cast<std::size_t>(it->second)].push_back(i);
        }
      }
    }
    for (auto& a : p.adj) std::sort(a.begin(), a.end());
    sched::BnbResult res = sched::solveLocal(p, opt_.node_limit);
    bnb_nodes_ += res.nodes;
    for (int& m : res.members) m = candidates[static_cast<std::size_t>(m)];
    std::sort(res.members.begin(), res.members.end());
    return res;
  }

  int self_;
  int weight_;
  DistributedGrowthOptions opt_;
  NodeState state_ = NodeState::kWhite;
  bool fired_ = false;
  int rbar_ = 0;
  // Branch & bound nodes expanded by this reader's local MWFS solves (the
  // distributed analogue of sched.weight_evals); accumulated from solveOn.
  mutable std::int64_t bnb_nodes_ = 0;
  std::unordered_map<int, InfoRecord> info_;
  std::unordered_set<int> removed_;
  std::unordered_set<int> selected_;
  std::unordered_set<int> seen_results_;
  // Fault hardening state (touched only on a lossy substrate).
  bool lossy_ = false;
  int epoch_ = 0;
  int blocked_rounds_ = 0;
  int retries_ = 0;
  int retries_total_ = 0;
  int evictions_ = 0;
  std::vector<int> result_payload_;
  std::unordered_map<int, int> info_epoch_;
  std::unordered_set<int> evicted_;
};

}  // namespace

GrowthDistributedScheduler::GrowthDistributedScheduler(
    const graph::InterferenceGraph& g, DistributedGrowthOptions opt)
    : graph_(&g), opt_(opt) {
  assert(opt_.rho > 1.0);
  assert(opt_.c >= 1);
}

sched::OneShotResult GrowthDistributedScheduler::schedule(
    const core::System& sys) {
  assert(graph_->numNodes() == sys.numReaders());
  obs::ScopedTimer sched_span(trace_ != nullptr ? metrics_ : nullptr,
                              "alg3.schedule_us", trace_,
                              "alg3.schedule");
  const int n = sys.numReaders();
  stats_ = {};
  ++opt_.salt;  // new symmetry-breaking pattern each slot

  // Control traffic flows over the sensing graph (see buildSensingGraph):
  // a supergraph of the interference graph that connects every pair of
  // readers able to RRc-collide.  Interference semantics (conflict edges,
  // N^r, removal waves) stay on `graph_`.
  if (comm_ == nullptr) {
    comm_ = std::make_unique<graph::InterferenceGraph>(
        graph::buildSensingGraph(sys));
  }

  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    std::vector<int> unread_tags;
    for (const int t : sys.coverage(v)) {
      if (!sys.isRead(t)) unread_tags.push_back(t);
    }
    const auto nb = graph_->neighbors(v);
    programs.push_back(std::make_unique<GrowthNode>(
        v, sys.singleWeight(v), std::move(unread_tags),
        std::vector<int>(nb.begin(), nb.end()), opt_));
  }

  Network net(*comm_, std::move(programs));
  net.attachObs(metrics_, trace_);
  net.attachChannel(channel_);
  const Network::RunStats run = net.run(opt_.max_rounds, cancelToken());
  stats_.rounds = run.rounds;
  stats_.messages = run.messages;
  stats_.payload_words = run.payload_words;
  stats_.quiesced = run.all_done;

  std::vector<int> X;
  std::int64_t bnb_nodes = 0;
  for (int v = 0; v < n; ++v) {
    const auto& node = static_cast<const GrowthNode&>(net.program(v));
    if (node.state() == NodeState::kRed) X.push_back(v);
    bnb_nodes += node.bnbNodes();
    if (node.wasHead()) {
      ++stats_.heads;
      stats_.max_rbar = std::max(stats_.max_rbar, node.rbar());
    }
    stats_.info_retries += node.infoRetries();
    stats_.evicted_rivals += node.evictions();
  }
  if (metrics_ != nullptr && channel_ != nullptr) {
    metrics_->counter("fault.sched.info_retries").add(stats_.info_retries);
    metrics_->counter("fault.sched.evicted_rivals").add(stats_.evicted_rivals);
  }
  recordScheduleMetrics(bnb_nodes, stats_.heads);
  {
    obs::CostBill b;
    b.weight_evals = n;  // per-node singleWeight during program construction
    b.csr_rows = n;
    b.bnb_nodes = bnb_nodes;
    b.net_messages = run.messages;
    b.net_rounds = run.rounds;
    chargeCost("alg3.protocol", b);
  }
  return {X, sys.weight(X)};
}

}  // namespace rfid::dist
