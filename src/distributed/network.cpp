#include "distributed/network.h"

#include <algorithm>
#include <cassert>

namespace rfid::dist {

void Context::send(int to, int type, std::vector<int> data) {
  assert(std::find(neighbors_.begin(), neighbors_.end(), to) !=
             neighbors_.end() &&
         "messages travel only along interference-graph edges");
  net_->enqueue({self_, to, type, std::move(data)});
}

void Context::broadcast(int type, const std::vector<int>& data) {
  for (const int u : neighbors_) net_->enqueue({self_, u, type, data});
}

bool Context::lossy() const { return net_->channel_ != nullptr; }

Network::Network(const graph::InterferenceGraph& topology,
                 std::vector<std::unique_ptr<NodeProgram>> programs)
    : topology_(&topology), programs_(std::move(programs)) {
  assert(static_cast<int>(programs_.size()) == topology.numNodes());
}

void Network::enqueue(Message m) {
  if (channel_ == nullptr) {
    stats_.messages += 1;
    stats_.payload_words += static_cast<std::int64_t>(m.data.size());
    in_flight_.push_back(std::move(m));
    return;
  }
  std::vector<int> delays;
  channel_->onSend(m.from, m.to, delays);
  if (delays.empty()) {
    ++stats_.dropped;
    return;
  }
  stats_.messages += static_cast<std::int64_t>(delays.size());
  stats_.payload_words += static_cast<std::int64_t>(delays.size()) *
                          static_cast<std::int64_t>(m.data.size());
  stats_.duplicated += static_cast<std::int64_t>(delays.size()) - 1;
  for (const int extra : delays) {
    if (extra <= 0) {
      in_flight_.push_back(m);
    } else {
      ++stats_.delayed;
      delayed_.push_back({extra, m});
    }
  }
}

void Network::attachObs(obs::MetricsRegistry* metrics, obs::TraceSink* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

Network::RunStats Network::run(int max_rounds,
                               const ckpt::CancelToken* cancel) {
  // Carry the channel counters' per-run slice cleanly: stats_ resets here,
  // but in_flight_/delayed_ may hold leftovers from a capped previous run
  // (long-lived protocol networks call run() repeatedly).
  stats_ = {};
  const int n = numNodes();

  // init(): programs may queue their first broadcasts.  Crashed nodes do
  // not boot.
  for (int v = 0; v < n; ++v) {
    if (channel_ != nullptr && channel_->nodeDown(v)) continue;
    Context ctx(*this, v, -1, topology_->neighbors(v));
    programs_[static_cast<std::size_t>(v)]->init(ctx);
  }

  std::vector<std::vector<Message>> inbox(static_cast<std::size_t>(n));
  for (int round = 0; round < max_rounds; ++round) {
    // Cancellation checkpoint at the round boundary: rounds are atomic, so
    // stopping here leaves every program and the wire in a coherent state.
    if (cancel != nullptr && cancel->cancelled()) break;
    // Deliver everything sent last round plus delayed copies now due.
    for (auto& box : inbox) box.clear();
    std::vector<Message> deliveries;
    deliveries.swap(in_flight_);
    if (!delayed_.empty()) {
      auto due = delayed_.begin();
      for (auto it = delayed_.begin(); it != delayed_.end(); ++it) {
        // A copy with `rounds_left` extra rounds arrives that many rounds
        // *after* the normal one-round latency: deliver once the counter
        // goes negative, not when it reaches zero.
        if (--it->rounds_left < 0) {
          deliveries.push_back(std::move(it->msg));
        } else {
          // Guard the no-op case: self-move-assignment empties the payload.
          if (due != it) *due = std::move(*it);
          ++due;
        }
      }
      delayed_.erase(due, delayed_.end());
    }
    const std::size_t delivered = deliveries.size();
    for (Message& m : deliveries) {
      if (channel_ != nullptr && channel_->nodeDown(m.to)) {
        ++stats_.dead_drops;
        continue;
      }
      inbox[static_cast<std::size_t>(m.to)].push_back(std::move(m));
    }

    // Crashed nodes neither execute nor block quiescence: a program that
    // can never act again must not deadlock the rest of the network.
    bool all_done = true;
    for (int v = 0; v < n; ++v) {
      if (channel_ != nullptr && channel_->nodeDown(v)) continue;
      Context ctx(*this, v, round, topology_->neighbors(v));
      programs_[static_cast<std::size_t>(v)]->onRound(ctx, inbox[static_cast<std::size_t>(v)]);
      all_done = all_done && programs_[static_cast<std::size_t>(v)]->isDone();
    }
    stats_.rounds = round + 1;

    if (trace_ != nullptr) {
      trace_->instant(
          obs::EventKind::kRound, "net.round",
          {{"round", static_cast<double>(round)},
           {"delivered", static_cast<double>(delivered)},
           {"in_flight", static_cast<double>(in_flight_.size())},
           {"done", all_done && in_flight_.empty() && delayed_.empty() ? 1.0
                                                                       : 0.0}});
    }

    // Quiescence needs the delayed queue empty too: a duplicated or
    // delayed copy is still on the wire even when every program is done.
    if (all_done && in_flight_.empty() && delayed_.empty()) {
      stats_.all_done = true;
      break;
    }
  }

  totals_.rounds += stats_.rounds;
  totals_.messages += stats_.messages;
  totals_.payload_words += stats_.payload_words;
  totals_.dropped += stats_.dropped;
  totals_.duplicated += stats_.duplicated;
  totals_.delayed += stats_.delayed;
  totals_.dead_drops += stats_.dead_drops;
  totals_.all_done = stats_.all_done;
  if (metrics_ != nullptr) {
    metrics_->counter("net.rounds").add(stats_.rounds);
    metrics_->counter("net.messages").add(stats_.messages);
    metrics_->counter("net.payload_words").add(stats_.payload_words);
    metrics_->gauge("net.last_run_rounds")
        .set(static_cast<double>(stats_.rounds));
    metrics_->gauge("net.converged_round")
        .set(stats_.all_done ? static_cast<double>(stats_.rounds) : -1.0);
    if (channel_ != nullptr) {
      metrics_->counter("fault.net.dropped").add(stats_.dropped);
      metrics_->counter("fault.net.duplicated").add(stats_.duplicated);
      metrics_->counter("fault.net.delayed").add(stats_.delayed);
      metrics_->counter("fault.net.dead_drops").add(stats_.dead_drops);
    }
  }
  if (trace_ != nullptr && channel_ != nullptr &&
      stats_.dropped + stats_.duplicated + stats_.delayed + stats_.dead_drops >
          0) {
    trace_->instant(obs::EventKind::kFault, "fault.net",
                    {{"dropped", static_cast<double>(stats_.dropped)},
                     {"duplicated", static_cast<double>(stats_.duplicated)},
                     {"delayed", static_cast<double>(stats_.delayed)},
                     {"dead_drops", static_cast<double>(stats_.dead_drops)}});
  }
  return stats_;
}

}  // namespace rfid::dist
