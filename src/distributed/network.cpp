#include "distributed/network.h"

#include <algorithm>
#include <cassert>

namespace rfid::dist {

void Context::send(int to, int type, std::vector<int> data) {
  assert(std::find(neighbors_.begin(), neighbors_.end(), to) !=
             neighbors_.end() &&
         "messages travel only along interference-graph edges");
  net_->enqueue({self_, to, type, std::move(data)});
}

void Context::broadcast(int type, const std::vector<int>& data) {
  for (const int u : neighbors_) net_->enqueue({self_, u, type, data});
}

Network::Network(const graph::InterferenceGraph& topology,
                 std::vector<std::unique_ptr<NodeProgram>> programs)
    : topology_(&topology), programs_(std::move(programs)) {
  assert(static_cast<int>(programs_.size()) == topology.numNodes());
}

void Network::enqueue(Message m) {
  stats_.messages += 1;
  stats_.payload_words += static_cast<std::int64_t>(m.data.size());
  in_flight_.push_back(std::move(m));
}

void Network::attachObs(obs::MetricsRegistry* metrics, obs::TraceSink* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

Network::RunStats Network::run(int max_rounds) {
  stats_ = {};
  const int n = numNodes();

  // init(): programs may queue their first broadcasts.
  for (int v = 0; v < n; ++v) {
    Context ctx(*this, v, -1, topology_->neighbors(v));
    programs_[static_cast<std::size_t>(v)]->init(ctx);
  }

  std::vector<std::vector<Message>> inbox(static_cast<std::size_t>(n));
  for (int round = 0; round < max_rounds; ++round) {
    // Deliver everything sent last round.
    for (auto& box : inbox) box.clear();
    std::vector<Message> deliveries;
    deliveries.swap(in_flight_);
    const std::size_t delivered = deliveries.size();
    for (Message& m : deliveries) {
      inbox[static_cast<std::size_t>(m.to)].push_back(std::move(m));
    }

    bool all_done = true;
    for (int v = 0; v < n; ++v) {
      Context ctx(*this, v, round, topology_->neighbors(v));
      programs_[static_cast<std::size_t>(v)]->onRound(ctx, inbox[static_cast<std::size_t>(v)]);
      all_done = all_done && programs_[static_cast<std::size_t>(v)]->isDone();
    }
    stats_.rounds = round + 1;

    if (trace_ != nullptr) {
      trace_->instant(
          obs::EventKind::kRound, "net.round",
          {{"round", static_cast<double>(round)},
           {"delivered", static_cast<double>(delivered)},
           {"in_flight", static_cast<double>(in_flight_.size())},
           {"done", all_done && in_flight_.empty() ? 1.0 : 0.0}});
    }

    if (all_done && in_flight_.empty()) {
      stats_.all_done = true;
      break;
    }
  }

  totals_.rounds += stats_.rounds;
  totals_.messages += stats_.messages;
  totals_.payload_words += stats_.payload_words;
  totals_.all_done = stats_.all_done;
  if (metrics_ != nullptr) {
    metrics_->counter("net.rounds").add(stats_.rounds);
    metrics_->counter("net.messages").add(stats_.messages);
    metrics_->counter("net.payload_words").add(stats_.payload_words);
    metrics_->gauge("net.last_run_rounds")
        .set(static_cast<double>(stats_.rounds));
    metrics_->gauge("net.converged_round")
        .set(stats_.all_done ? static_cast<double>(stats_.rounds) : -1.0);
  }
  return stats_;
}

}  // namespace rfid::dist
