#include "distributed/kcoloring.h"

#include <cassert>

namespace rfid::dist {

KColoringScheduler::KColoringScheduler(const core::System& sys, int channels,
                                       std::uint64_t seed)
    : channels_(channels) {
  assert(channels >= 1);
  ColorwaveOptions opt;
  // Pin the palette to the channel count: [13] has exactly k channels to
  // hand out, so Colorwave's frame adaptation is disabled.
  opt.initial_max_colors = channels;
  opt.min_colors = channels;
  opt.max_colors_cap = channels;
  opt.settle_rounds = 1500;  // pinned palettes converge slower when k is tight
  protocol_ = std::make_unique<ColorwaveScheduler>(sys, seed, opt);
}

std::string KColoringScheduler::name() const {
  return "KCol" + std::to_string(channels_);
}

sched::ChanneledResult KColoringScheduler::scheduleChanneled(
    const core::System& sys) {
  protocol_->runProtocol(settled_ ? 10 : 1500);
  settled_ = true;

  const std::vector<int> colors = protocol_->colors();
  sched::ChanneledResult res;
  for (int v = 0; v < sys.numReaders(); ++v) {
    res.readers.push_back(v);
    res.channel.push_back(colors[static_cast<std::size_t>(v)]);
  }
  res.weight = static_cast<int>(
      sched::wellCoveredTagsChanneled(sys, res.readers, res.channel).size());
  return res;
}

}  // namespace rfid::dist
