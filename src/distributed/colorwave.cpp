#include "distributed/colorwave.h"

#include <algorithm>
#include <cassert>

#include "graph/coloring.h"
#include "workload/rng.h"

namespace rfid::dist {

namespace {

enum MsgType : int { kColor = 1 };
// COLOR payload: [color, priority]

class ColorwaveNode final : public NodeProgram {
 public:
  ColorwaveNode(std::uint64_t seed, const ColorwaveOptions& opt)
      : opt_(opt), rng_(seed), max_colors_(opt.initial_max_colors) {
    color_ = rng_.uniformInt(0, max_colors_ - 1);
  }

  void init(Context& ctx) override { announce(ctx); }

  void onRound(Context& ctx, std::span<const Message> inbox) override {
    bool collided = false;
    bool must_repick = false;
    for (const Message& m : inbox) {
      if (m.type != kColor) continue;
      const int their_color = m.data[0];
      const int their_pri = m.data[1];
      if (their_color != color_) continue;
      collided = true;
      // Kick rule: the contender with the larger (priority, id) keeps the
      // color; everyone else re-picks.
      if (std::pair(their_pri, m.from) > std::pair(last_priority_, ctx.self())) {
        must_repick = true;
      }
    }

    // Sliding collision window drives the safe/unsafe maxColors adaptation.
    window_.push_back(collided ? 1 : 0);
    if (static_cast<int>(window_.size()) > opt_.window) window_.erase(window_.begin());
    if (static_cast<int>(window_.size()) == opt_.window) {
      int hits = 0;
      for (const char h : window_) hits += h;
      const double pct = static_cast<double>(hits) / opt_.window;
      if (pct > opt_.up_threshold && max_colors_ < opt_.max_colors_cap) {
        ++max_colors_;
        window_.clear();
      } else if (opt_.down_threshold > 0.0 && pct < opt_.down_threshold &&
                 max_colors_ > opt_.min_colors) {
        --max_colors_;
        window_.clear();
        if (color_ >= max_colors_) must_repick = true;
      }
    }

    if (must_repick) color_ = rng_.uniformInt(0, max_colors_ - 1);
    stable_rounds_ = collided ? 0 : stable_rounds_ + 1;
    announce(ctx);
  }

  /// Colorwave never truly halts; "done" here means locally conflict-free
  /// long enough that the network's quiescence check can stop a test run.
  bool isDone() const override { return stable_rounds_ >= 20; }

  int color() const { return color_; }

 private:
  void announce(Context& ctx) {
    last_priority_ = static_cast<int>(rng_.next() & 0x7fffffff);
    ctx.broadcast(kColor, {color_, last_priority_});
  }

  ColorwaveOptions opt_;
  workload::Rng rng_;
  int max_colors_;
  int color_;
  int last_priority_ = 0;
  int stable_rounds_ = 0;
  std::vector<char> window_;
};

}  // namespace

ColorwaveScheduler::ColorwaveScheduler(const graph::InterferenceGraph& g,
                                       std::uint64_t seed,
                                       ColorwaveOptions opt)
    : graph_(&g), opt_(opt) {
  init(seed);
}

ColorwaveScheduler::ColorwaveScheduler(const core::System& sys,
                                       std::uint64_t seed,
                                       ColorwaveOptions opt)
    : owned_graph_(std::make_unique<graph::InterferenceGraph>(
          graph::buildSensingGraph(sys))),
      graph_(owned_graph_.get()),
      opt_(opt) {
  init(seed);
}

void ColorwaveScheduler::init(std::uint64_t seed) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(static_cast<std::size_t>(graph_->numNodes()));
  for (int v = 0; v < graph_->numNodes(); ++v) {
    programs.push_back(std::make_unique<ColorwaveNode>(
        workload::deriveSeed(seed, "colorwave-node", static_cast<std::uint64_t>(v)), opt_));
  }
  net_ = std::make_unique<Network>(*graph_, std::move(programs));
}

ColorwaveScheduler::~ColorwaveScheduler() = default;

void ColorwaveScheduler::advance(int rounds) {
  // Forward per-scheduler observability to the long-lived protocol network
  // (attachments may change between slots, so re-point every advance).
  net_->attachObs(nullptr, trace_);
  const Network::RunStats s = net_->run(rounds);
  stats_.protocol_rounds += s.rounds;
  stats_.messages += s.messages;
}

std::vector<int> ColorwaveScheduler::colors() const {
  std::vector<int> c(static_cast<std::size_t>(net_->numNodes()));
  for (int v = 0; v < net_->numNodes(); ++v) {
    c[static_cast<std::size_t>(v)] =
        static_cast<const ColorwaveNode&>(net_->program(v)).color();
  }
  return c;
}

bool ColorwaveScheduler::converged() const {
  const auto c = colors();
  return graph::isProperColoring(*graph_, c);
}

sched::OneShotResult ColorwaveScheduler::schedule(const core::System& sys) {
  assert(graph_->numNodes() == sys.numReaders());
  const Stats before = stats_;
  if (!settled_) {
    advance(opt_.settle_rounds);
    settled_ = true;
  } else {
    advance(opt_.rounds_between_slots);
  }
  if (metrics_ != nullptr) {
    metrics_->counter("net.protocol_rounds")
        .add(stats_.protocol_rounds - before.protocol_rounds);
    metrics_->counter("net.messages").add(stats_.messages - before.messages);
  }

  // Rotate through the distinct colors currently in use; activate that
  // class wholesale.  Colorwave is weight-blind by design — it schedules
  // air time, not tags — which is exactly the baseline the paper compares
  // against.
  const auto node_colors = colors();
  std::vector<int> distinct = node_colors;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  const int cls =
      distinct[static_cast<std::size_t>(slot_counter_) % distinct.size()];
  ++slot_counter_;

  std::vector<int> X;
  for (int v = 0; v < sys.numReaders(); ++v) {
    if (node_colors[static_cast<std::size_t>(v)] == cls) X.push_back(v);
  }
  recordScheduleMetrics(1, static_cast<std::int64_t>(distinct.size()));
  return {X, sys.weight(X)};
}

}  // namespace rfid::dist
