#include "distributed/colorwave.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "graph/coloring.h"
#include "obs/timer.h"
#include "workload/rng.h"

namespace rfid::dist {

namespace {

enum MsgType : int { kColor = 1 };
// COLOR payload: [color, priority] — or [color, priority, version] on a
// lossy substrate, where the version word lets receivers discard stale
// duplicated/delayed copies (fault hardening, docs/faults.md).

class ColorwaveNode final : public NodeProgram {
 public:
  ColorwaveNode(std::uint64_t seed, const ColorwaveOptions& opt)
      : opt_(opt), rng_(seed), max_colors_(opt.initial_max_colors) {
    color_ = rng_.uniformInt(0, max_colors_ - 1);
  }

  void init(Context& ctx) override { announce(ctx); }

  void onRound(Context& ctx, std::span<const Message> inbox) override {
    ++local_round_;
    bool collided = false;
    bool must_repick = false;
    for (const Message& m : inbox) {
      if (m.type != kColor) continue;
      if (m.data.size() >= 3) {
        // Hardened wire format.  A copy whose version is not newer than
        // the last accepted one from this sender is a duplicate or a
        // delayed echo of an old color — acting on it would re-pick
        // against state the neighbor already left (livelock risk).
        const int version = m.data[2];
        const auto [it, first_contact] = last_version_.try_emplace(m.from, version);
        if (!first_contact) {
          if (version <= it->second) continue;
          it->second = version;
        }
        last_heard_[m.from] = local_round_;
      }
      const int their_color = m.data[0];
      const int their_pri = m.data[1];
      if (their_color != color_) continue;
      collided = true;
      // Kick rule: the contender with the larger (priority, id) keeps the
      // color; everyone else re-picks.
      if (std::pair(their_pri, m.from) > std::pair(last_priority_, ctx.self())) {
        must_repick = true;
      }
    }

    // Silence detection: a neighbor quiet past the timeout is presumed
    // crashed and evicted; its next announcement re-admits it with a fresh
    // version baseline (a recovered reader must not be held to pre-crash
    // staleness bookkeeping).
    if (ctx.lossy() && opt_.silence_timeout > 0) {
      for (auto it = last_heard_.begin(); it != last_heard_.end();) {
        if (local_round_ - it->second > opt_.silence_timeout) {
          last_version_.erase(it->first);
          ++evicted_;
          it = last_heard_.erase(it);
        } else {
          ++it;
        }
      }
    }

    // Sliding collision window drives the safe/unsafe maxColors adaptation.
    window_.push_back(collided ? 1 : 0);
    if (static_cast<int>(window_.size()) > opt_.window) window_.erase(window_.begin());
    if (static_cast<int>(window_.size()) == opt_.window) {
      int hits = 0;
      for (const char h : window_) hits += h;
      const double pct = static_cast<double>(hits) / opt_.window;
      if (pct > opt_.up_threshold && max_colors_ < opt_.max_colors_cap) {
        ++max_colors_;
        window_.clear();
      } else if (opt_.down_threshold > 0.0 && pct < opt_.down_threshold &&
                 max_colors_ > opt_.min_colors) {
        --max_colors_;
        window_.clear();
        if (color_ >= max_colors_) must_repick = true;
      }
    }

    if (must_repick) color_ = rng_.uniformInt(0, max_colors_ - 1);
    stable_rounds_ = collided ? 0 : stable_rounds_ + 1;
    announce(ctx);
  }

  /// Colorwave never truly halts; "done" here means locally conflict-free
  /// long enough that the network's quiescence check can stop a test run.
  bool isDone() const override { return stable_rounds_ >= 20; }

  int color() const { return color_; }
  int evicted() const { return evicted_; }

 private:
  void announce(Context& ctx) {
    last_priority_ = static_cast<int>(rng_.next() & 0x7fffffff);
    if (ctx.lossy()) {
      ctx.broadcast(kColor, {color_, last_priority_, ++version_});
    } else {
      ctx.broadcast(kColor, {color_, last_priority_});
    }
  }

  ColorwaveOptions opt_;
  workload::Rng rng_;
  int max_colors_;
  int color_;
  int last_priority_ = 0;
  int stable_rounds_ = 0;
  std::vector<char> window_;
  // Fault hardening state (touched only on a lossy substrate).
  int local_round_ = 0;
  int version_ = 0;
  int evicted_ = 0;
  std::unordered_map<int, int> last_version_;
  std::unordered_map<int, int> last_heard_;
};

}  // namespace

ColorwaveScheduler::ColorwaveScheduler(const graph::InterferenceGraph& g,
                                       std::uint64_t seed,
                                       ColorwaveOptions opt)
    : graph_(&g), opt_(opt) {
  init(seed);
}

ColorwaveScheduler::ColorwaveScheduler(const core::System& sys,
                                       std::uint64_t seed,
                                       ColorwaveOptions opt)
    : owned_graph_(std::make_unique<graph::InterferenceGraph>(
          graph::buildSensingGraph(sys))),
      graph_(owned_graph_.get()),
      opt_(opt) {
  init(seed);
}

void ColorwaveScheduler::init(std::uint64_t seed) {
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(static_cast<std::size_t>(graph_->numNodes()));
  for (int v = 0; v < graph_->numNodes(); ++v) {
    programs.push_back(std::make_unique<ColorwaveNode>(
        workload::deriveSeed(seed, "colorwave-node", static_cast<std::uint64_t>(v)), opt_));
  }
  net_ = std::make_unique<Network>(*graph_, std::move(programs));
}

ColorwaveScheduler::~ColorwaveScheduler() = default;

void ColorwaveScheduler::advance(int rounds) {
  // Forward per-scheduler observability to the long-lived protocol network
  // (attachments may change between slots, so re-point every advance).
  net_->attachObs(nullptr, trace_);
  const Network::RunStats s = net_->run(rounds, cancelToken());
  stats_.protocol_rounds += s.rounds;
  stats_.messages += s.messages;
  // The network's own metrics hookup stays detached (net.* counters would
  // double-count against the scheduler's aggregate stats), so the fault
  // slice is recorded here.  Channel-free runs register nothing and keep
  // the pre-fault export byte-identical.
  if (metrics_ != nullptr && net_->channel() != nullptr) {
    metrics_->counter("fault.net.dropped").add(s.dropped);
    metrics_->counter("fault.net.duplicated").add(s.duplicated);
    metrics_->counter("fault.net.delayed").add(s.delayed);
    metrics_->counter("fault.net.dead_drops").add(s.dead_drops);
  }
}

std::vector<int> ColorwaveScheduler::colors() const {
  std::vector<int> c(static_cast<std::size_t>(net_->numNodes()));
  for (int v = 0; v < net_->numNodes(); ++v) {
    c[static_cast<std::size_t>(v)] =
        static_cast<const ColorwaveNode&>(net_->program(v)).color();
  }
  return c;
}

bool ColorwaveScheduler::converged() const {
  const auto c = colors();
  return graph::isProperColoring(*graph_, c);
}

std::uint64_t ColorwaveScheduler::stateFingerprint() const {
  std::uint64_t h = workload::splitmix64(
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(slot_counter_)));
  for (const int c : colors()) {
    h = workload::splitmix64(
        h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)));
  }
  return h;
}

void ColorwaveScheduler::attachChannel(fault::ChannelModel* channel) {
  net_->attachChannel(channel);
}

bool ColorwaveScheduler::convergedAmongAlive() const {
  const fault::ChannelModel* ch = net_->channel();
  if (ch == nullptr) return converged();
  const auto c = colors();
  for (int v = 0; v < graph_->numNodes(); ++v) {
    if (ch->nodeDown(v)) continue;
    for (const int u : graph_->neighbors(v)) {
      if (u <= v || ch->nodeDown(u)) continue;
      if (c[static_cast<std::size_t>(v)] == c[static_cast<std::size_t>(u)]) {
        return false;
      }
    }
  }
  return true;
}

int ColorwaveScheduler::evictedNeighborLinks() const {
  int evicted = 0;
  for (int v = 0; v < net_->numNodes(); ++v) {
    evicted += static_cast<const ColorwaveNode&>(net_->program(v)).evicted();
  }
  return evicted;
}

sched::OneShotResult ColorwaveScheduler::schedule(const core::System& sys) {
  assert(graph_->numNodes() == sys.numReaders());
  obs::ScopedTimer sched_span(trace_ != nullptr ? metrics_ : nullptr,
                              "ca.schedule_us", trace_,
                              "ca.schedule");
  const Stats before = stats_;
  if (!settled_) {
    advance(opt_.settle_rounds);
    settled_ = true;
  } else {
    advance(opt_.rounds_between_slots);
  }
  if (metrics_ != nullptr) {
    metrics_->counter("net.protocol_rounds")
        .add(stats_.protocol_rounds - before.protocol_rounds);
    metrics_->counter("net.messages").add(stats_.messages - before.messages);
  }

  // Rotate through the distinct colors currently in use; activate that
  // class wholesale.  Colorwave is weight-blind by design — it schedules
  // air time, not tags — which is exactly the baseline the paper compares
  // against.
  const auto node_colors = colors();
  std::vector<int> distinct = node_colors;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  const int cls =
      distinct[static_cast<std::size_t>(slot_counter_) % distinct.size()];
  ++slot_counter_;

  std::vector<int> X;
  for (int v = 0; v < sys.numReaders(); ++v) {
    if (node_colors[static_cast<std::size_t>(v)] == cls) X.push_back(v);
  }
  recordScheduleMetrics(1, static_cast<std::int64_t>(distinct.size()));
  {
    obs::CostBill b;
    b.weight_evals = 1;  // the final referee evaluation below
    b.net_messages = stats_.messages - before.messages;
    b.net_rounds = stats_.protocol_rounds - before.protocol_rounds;
    chargeCost("ca.protocol", b);
  }
  return {X, sys.weight(X)};
}

}  // namespace rfid::dist
