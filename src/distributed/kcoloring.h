// kcoloring.h — the k-coloring channel-assignment baseline ([13], §VII).
//
// "[13] suggests k-coloring of the interference graph where k is the
//  number of available channels.  If the graph is not k-colorable under
//  their suggested heuristic, then they will remove certain edges and
//  nodes from the interference graph.  This work aims at avoiding the
//  reader-tag collisions exclusively."
//
// Rendered here as a channeled scheduler: the Colorwave protocol runs with
// maxColors *pinned* to the channel count (no adaptation), coloring the
// sensing graph; every slot activates ALL readers simultaneously, each on
// its color's channel.  Readers the heuristic failed to separate — the
// "removed" nodes of [13] — are exactly the same-channel conflicting pairs,
// and the channel-aware referee charges them as RTc victims.  RRc at tags
// is untouched by channels, which is why the paper's weight-aware
// algorithms still win.
#pragma once

#include <cstdint>
#include <memory>

#include "distributed/colorwave.h"
#include "sched/channels.h"

namespace rfid::dist {

class KColoringScheduler final : public sched::ChanneledScheduler {
 public:
  /// `channels` = k; the conflict graph is the sensing graph of `sys`.
  KColoringScheduler(const core::System& sys, int channels,
                     std::uint64_t seed);

  std::string name() const override;
  sched::ChanneledResult scheduleChanneled(const core::System& sys) override;

  /// True iff the pinned-k coloring is currently proper (k-colorable and
  /// converged); improper residue is what [13] "removes".
  bool converged() const { return protocol_->converged(); }

 private:
  int channels_;
  std::unique_ptr<ColorwaveScheduler> protocol_;
  bool settled_ = false;
};

}  // namespace rfid::dist
