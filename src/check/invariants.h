// invariants.h — the runtime correctness oracle (docs/testing.md).
//
// Four optimized/faulted/resumable execution paths now produce schedules,
// and the equivalence tests only prove they agree with *each other*.  The
// ScheduleValidator instead re-verifies every committed slot against the
// paper's definitions, recomputed from first principles:
//
//   * pairwise independence (Definition 2) from raw reader geometry,
//     ‖v_i − v_j‖ > max(R_i, R_j) — never the cached interference graph;
//   * the slot's served set by a naive O(|X|·m) exactly-one-coverage scan
//     (Definition 1) over raw positions — never the CSR coverage arrays;
//   * monotone read-state growth against a private shadow bitmap;
//   * MCS postconditions (Definition 4 / §III): a run that claims
//     completion left no servable tag unread, no committed slot claimed a
//     weight the referee cannot reproduce, and an early exit is justified
//     (budget, slot cap, stall-out, or every remaining tag truly orphaned
//     by permanent faults).
//
// The validator plugs into the MCS driver via McsOptions::validator and is
// deliberately *redundant* with the production code: it shares the
// System's data (positions, radii, the fault plan) but none of its derived
// structures, so a corrupted CSR index, a broken lazy-greedy key, or a
// referee regression shows up as a violation instead of a silently wrong
// schedule.  tools/mutation_smoke.sh proves the redundancy has teeth by
// seeding exactly such bugs and asserting the validator flags each one.
//
// Fault plans are first-class: the validator mirrors the driver's referee
// semantics (crash stripping, re-plan benching, loud jamming, interrogation
// misses) from the FaultPlan itself, so a fault-injected run is validated
// against the *faulted* ground truth, not the ideal one.  Checkpoint
// resume needs nothing special — replayed slots re-enter the same driver
// loop and are re-validated exactly like live ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/mcs.h"
#include "sched/scheduler.h"

namespace rfid::check {

/// How much redundant work the validator performs per slot.
enum class CheckLevel {
  /// Every invariant listed above; whole-bitmap and CSR cross-checks run
  /// once per run (begin/end).
  kNormal,
  /// Additionally re-verifies the full read bitmap, the live coverable
  /// count, and the System's own referee (weight(X) vs the naive scan)
  /// at *every* slot — quadratic paranoia for debugging sessions.
  kParanoid,
};

struct CheckOptions {
  CheckLevel level = CheckLevel::kNormal;
  /// The scheduler guarantees feasible proposals (every algorithm except
  /// Colorwave's raw color classes and the multi-channel scheduler).
  bool expect_feasible = true;
  /// OneShotResult::weight must equal the recomputed no-fault weight of
  /// the proposal (false for multi-channel, whose channeled weight
  /// legitimately exceeds the single-channel referee's, and for
  /// distributed schedulers running over a faulted control plane).
  bool expect_exact_weight = true;
  /// A committed slot must have strictly positive no-fault weight while
  /// servable tags remain — the greedy MCS postcondition.  False for
  /// schedulers that legitimately stall (Colorwave pre-convergence, lossy
  /// control planes).
  bool expect_progress = true;
  /// The fault plan driving the run's referee (nullptr = clean run).  The
  /// validator verifies the *faulted* semantics against this plan.
  const fault::FaultPlan* faults = nullptr;
  /// Must mirror McsOptions::reprobe_interval — the validator re-derives
  /// the driver's bench ("suspected dead") bookkeeping independently.
  int reprobe_interval = 8;
  /// Stop the run at the first violation (McsStop::kCheckFailed).  With
  /// false the run continues and violations accumulate up to max_issues.
  bool fail_fast = true;
  /// Recorded-issue cap; further violations are counted, not stored.
  int max_issues = 64;
  /// Observability (optional).  Counters: check.slots_checked,
  /// check.violations, check.tags_scanned.  Wall-clock (check.slot_us)
  /// rides with tracing only, matching the MCS driver's discipline.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

/// One recorded violation.
struct CheckIssue {
  int slot = -1;          // -1 = run-level (begin/end) issue
  std::string invariant;  // stable id, e.g. "slot.served-mismatch"
  std::string detail;     // human-readable specifics
};

class ScheduleValidator {
 public:
  explicit ScheduleValidator(CheckOptions opt = {});

  // ---- driver hooks (sched/runCoveringSchedule calls these) ----

  /// Captures the shadow read-state and cross-checks the System's derived
  /// structures against raw geometry.  Returns false (fail_fast only) on a
  /// violation — the driver then refuses to run at all.
  bool beginRun(const core::System& sys);

  /// Verifies one slot from first principles, called with the *pre-commit*
  /// read-state (before markRead).  `live` is the post-strip active set the
  /// referee actually executed and `jamming` the loud-crashed radiators —
  /// both empty-equivalent on clean runs, where `live` must equal the
  /// proposal.  Returns false when fail_fast and a violation fired; the
  /// driver then aborts without committing the slot.
  bool checkSlot(const core::System& sys, int slot,
                 const sched::OneShotResult& proposal,
                 std::span<const int> live, std::span<const int> jamming,
                 std::span<const int> served);

  /// Run postconditions.  `max_slots` / `max_stall` are the driver's caps
  /// (legitimate early-exit reasons).  Returns ok().
  bool checkRun(const core::System& sys, const sched::McsResult& res,
                int max_slots, int max_stall);

  // ---- results ----

  bool ok() const { return violations_ == 0; }
  /// Total violations seen (recorded + counted past max_issues).
  std::int64_t violations() const { return violations_; }
  const std::vector<CheckIssue>& issues() const { return issues_; }
  std::int64_t slotsChecked() const { return slots_checked_; }
  const CheckOptions& options() const { return opt_; }

  /// Human-readable violation report ("check: N violation(s)" + one line
  /// per recorded issue); writes nothing when ok().
  void report(std::ostream& os) const;

 private:
  void flag(int slot, std::string invariant, std::string detail);
  /// Geometric coverage test straight from positions and radii.
  bool covers(const core::System& sys, int reader, int tag) const;
  /// Unread (per shadow) tags with at least one geometric coverer.
  int shadowCoverableCount(const core::System& sys) const;
  /// True when no future slot can serve `tag` under permanent faults.
  bool unservableForever(const core::System& sys, int tag, int slot) const;

  CheckOptions opt_;
  std::vector<char> shadow_;        // private read-state mirror
  std::vector<int> trusted_from_;   // bench mirror (fault runs)
  int initial_unread_ = 0;
  int initial_uncoverable_ = 0;
  int remaining_coverable_ = 0;     // maintained from served commits
  std::int64_t slots_checked_ = 0;
  std::int64_t violations_ = 0;
  std::int64_t tags_scanned_ = 0;
  int trailing_stall_ = 0;          // consecutive zero-served slots seen
  std::int64_t sum_served_ = 0;
  bool begun_ = false;
  std::vector<CheckIssue> issues_;
  // Cached metric handles (resolved in beginRun, one pointer test after).
  obs::Counter* c_slots_ = nullptr;
  obs::Counter* c_violations_ = nullptr;
  obs::Counter* c_tags_ = nullptr;
};

}  // namespace rfid::check
