// index_oracle.h — self-healing validation of the incremental coverage
// index (docs/streaming.md).
//
// The streaming driver mutates core::System's dual CSR index in place
// (addTag / removeTag / moveTag).  Those splices are the one derived
// structure the ScheduleValidator cannot re-derive cheaply per slot, and a
// single missed delta silently corrupts every weight the schedulers compute
// from then on.  The IncrementalIndexOracle closes that hole the same way
// check/invariants.h does for slots: periodically rebuild the expected
// index from *raw geometry* — a naive O(n·m) reader×tag distance scan that
// shares no code with the incremental splices or the spatial grid — and
// compare FNV fingerprints (System::fingerprintArrays) against the live
// index.
//
// On a divergence the oracle fails the incremental path closed: it records
// the issue, bumps `check.index_divergence`, switches itself to paranoid
// cadence (every later call verifies), and — with self_heal on — rebuilds
// the index from scratch via System::rebuildIndex() and re-verifies.  A
// heal that restores agreement lets a production stream continue degraded
// but correct (`check.index_heals`); a rebuild that still disagrees means
// the geometry itself is inconsistent and the run must stop.  Under the
// CLI's --check the driver treats *any* divergence, healed or not, as an
// invariant violation (exit 5); tools/mutation_smoke.sh seeds a skipped
// covr delta and asserts exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "check/invariants.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfid::check {

struct IndexOracleOptions {
  /// Structural epochs between verifications: checkSlot() verifies once at
  /// least this many mutations accumulated since the last verification
  /// (<= 0 never, unless paranoid).  The cadence rides on epochs, not
  /// slots, so an idle stream costs nothing and a bursty one is checked
  /// proportionally to the churn it absorbed.
  int every_epochs = 64;
  /// Verify on every checkSlot() call regardless of epoch progress — also
  /// catches corruption that never bumped the epoch (--check=paranoid).
  bool paranoid = false;
  /// Rebuild from scratch and re-verify after a divergence.
  bool self_heal = true;
  /// Counters: check.index_checks / check.index_divergence /
  /// check.index_heals.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

enum class IndexVerdict {
  kSkipped,  // cadence not due; nothing inspected
  kOk,       // verified: live index matches raw geometry
  kHealed,   // diverged, rebuilt, re-verified clean
  kCorrupt,  // diverged and not restored (heal off, or rebuild disagrees)
};

class IncrementalIndexOracle {
 public:
  explicit IncrementalIndexOracle(IndexOracleOptions opt = {});

  /// Cadence-gated verification; the streaming driver calls this once per
  /// loop iteration after applying churn.  `slot` only labels issues.
  IndexVerdict checkSlot(core::System& sys, int slot);

  /// Unconditional verification (tests, run teardown).
  IndexVerdict verify(core::System& sys, int slot);

  std::int64_t checks() const { return checks_; }
  std::int64_t divergences() const { return divergences_; }
  std::int64_t heals() const { return heals_; }
  /// True while no *unhealed* corruption has been seen.
  bool ok() const { return divergences_ == heals_; }
  const std::vector<CheckIssue>& issues() const { return issues_; }
  const IndexOracleOptions& options() const { return opt_; }

 private:
  /// Both expected fingerprints, rebuilt from positions and radii alone.
  /// The bitmap side reuses the geometry CSR under the System's recorded
  /// SFC permutations (the permutations are model input — assigned once at
  /// construction — not derived state the incremental path could corrupt).
  struct Expected {
    std::uint64_t csr = 0;
    std::uint64_t bitmap = 0;
  };
  Expected expectedFingerprints(const core::System& sys) const;

  IndexOracleOptions opt_;
  std::uint64_t verified_epoch_ = 0;  // epoch at the last verification
  std::int64_t checks_ = 0;
  std::int64_t divergences_ = 0;
  std::int64_t heals_ = 0;
  std::vector<CheckIssue> issues_;
  // Cached handles (resolved lazily; one pointer test when detached).
  obs::Counter* c_checks_ = nullptr;
  obs::Counter* c_divergences_ = nullptr;
  obs::Counter* c_heals_ = nullptr;
};

}  // namespace rfid::check
