#include "check/index_oracle.h"

#include <algorithm>
#include <string>

namespace rfid::check {

IncrementalIndexOracle::IncrementalIndexOracle(IndexOracleOptions opt)
    : opt_(opt) {
  if (opt_.metrics != nullptr) {
    c_checks_ = &opt_.metrics->counter("check.index_checks");
    c_divergences_ = &opt_.metrics->counter("check.index_divergence");
    c_heals_ = &opt_.metrics->counter("check.index_heals");
  }
}

IncrementalIndexOracle::Expected IncrementalIndexOracle::expectedFingerprints(
    const core::System& sys) const {
  const int n = sys.numReaders();
  const int m = sys.numTags();
  // Rebuild both CSR directions from positions and radii alone — a plain
  // O(n·m) distance scan sharing nothing with the incremental splices or
  // the spatial grid, so a bug in either cannot hide here.  Departed tags
  // get empty rows, mirroring removeTag's contract.
  std::vector<int> covr_off(static_cast<std::size_t>(m) + 1, 0);
  std::vector<int> covr_idx;
  for (int t = 0; t < m; ++t) {
    if (!sys.departed(t)) {
      const geom::Vec2 p = sys.tag(t).pos;
      for (int v = 0; v < n; ++v) {
        const core::Reader& r = sys.reader(v);
        const double g = r.interrogation_radius;
        if (geom::dist2(p, r.pos) <= g * g) covr_idx.push_back(v);
      }
    }
    covr_off[static_cast<std::size_t>(t) + 1] =
        static_cast<int>(covr_idx.size());
  }
  // Transpose: walking tags ascending appends each tag to its coverers'
  // rows in ascending order, so the cov rows come out sorted for free.
  std::vector<int> cov_off(static_cast<std::size_t>(n) + 1, 0);
  for (const int v : covr_idx) ++cov_off[static_cast<std::size_t>(v) + 1];
  for (int v = 0; v < n; ++v) {
    cov_off[static_cast<std::size_t>(v) + 1] +=
        cov_off[static_cast<std::size_t>(v)];
  }
  std::vector<int> cov_idx(covr_idx.size());
  std::vector<int> cursor(cov_off.begin(), cov_off.end() - 1);
  for (int t = 0; t < m; ++t) {
    const auto lo = static_cast<std::size_t>(covr_off[static_cast<std::size_t>(t)]);
    const auto hi = static_cast<std::size_t>(covr_off[static_cast<std::size_t>(t) + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      const int v = covr_idx[i];
      cov_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = t;
    }
  }
  Expected e;
  e.csr = core::System::fingerprintArrays(cov_off, cov_idx, covr_off, covr_idx);

  // Expected bitmap: re-block the geometry cov rows under the System's
  // recorded SFC permutations.  Canonical form (non-zero words ascending)
  // matches System::buildBitmap, so the fingerprints compare directly.
  std::vector<std::uint32_t> row_of(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> bit_of(static_cast<std::size_t>(sys.numTagBits()));
  for (int v = 0; v < n; ++v) row_of[static_cast<std::size_t>(v)] = sys.readerRow(v);
  for (int t = 0; t < m; ++t) bit_of[static_cast<std::size_t>(t)] = sys.tagBit(t);
  std::vector<std::uint32_t> off(static_cast<std::size_t>(n) + 1, 0);
  std::vector<core::BitEntry> arena;
  arena.reserve(cov_idx.size());
  std::vector<std::uint32_t> bits;
  for (int r = 0; r < n; ++r) {
    const int v = sys.rowReader(static_cast<std::uint32_t>(r));
    const auto lo = static_cast<std::size_t>(cov_off[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(cov_off[static_cast<std::size_t>(v) + 1]);
    bits.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      bits.push_back(bit_of[static_cast<std::size_t>(cov_idx[i])]);
    }
    std::sort(bits.begin(), bits.end());
    for (const std::uint32_t p : bits) {
      const std::uint32_t w = p >> 6;
      if (arena.size() > off[static_cast<std::size_t>(r)] && arena.back().word == w) {
        arena.back().bits |= std::uint64_t{1} << (p & 63);
      } else {
        arena.push_back({w, 0, std::uint64_t{1} << (p & 63)});
      }
    }
    off[static_cast<std::size_t>(r) + 1] = static_cast<std::uint32_t>(arena.size());
  }
  e.bitmap = core::System::fingerprintBitmap(off, arena, row_of, bit_of);
  return e;
}

IndexVerdict IncrementalIndexOracle::checkSlot(core::System& sys, int slot) {
  if (!opt_.paranoid) {
    if (opt_.every_epochs <= 0) return IndexVerdict::kSkipped;
    const std::uint64_t delta = sys.structuralEpoch() - verified_epoch_;
    if (delta < static_cast<std::uint64_t>(opt_.every_epochs)) {
      return IndexVerdict::kSkipped;
    }
  }
  return verify(sys, slot);
}

IndexVerdict IncrementalIndexOracle::verify(core::System& sys, int slot) {
  ++checks_;
  if (c_checks_ != nullptr) c_checks_->add(1);
  const Expected expected = expectedFingerprints(sys);
  const std::uint64_t live_csr = sys.indexFingerprint();
  const std::uint64_t live_bitmap = sys.bitmapFingerprint();
  if (live_csr == expected.csr && live_bitmap == expected.bitmap) {
    verified_epoch_ = sys.structuralEpoch();
    return IndexVerdict::kOk;
  }
  // Divergence: the incremental path produced an index raw geometry
  // disagrees with.  Fail it closed — from here on every call verifies.
  ++divergences_;
  if (c_divergences_ != nullptr) c_divergences_->add(1);
  opt_.paranoid = true;
  const char* which = live_csr != expected.csr
                          ? (live_bitmap != expected.bitmap
                                 ? "incremental CSR+bitmap index fingerprints "
                                 : "incremental CSR index fingerprint ")
                          : "bitmap index fingerprint ";
  issues_.push_back(
      {slot, "index.divergence",
       std::string(which) + std::to_string(live_csr) + "/" +
           std::to_string(live_bitmap) + " != geometry rebuild " +
           std::to_string(expected.csr) + "/" + std::to_string(expected.bitmap) +
           " at epoch " + std::to_string(sys.structuralEpoch())});
  if (opt_.trace != nullptr) {
    opt_.trace->instant(obs::EventKind::kFault, "check.index_divergence",
                        {{"slot", static_cast<double>(slot)},
                         {"epoch", static_cast<double>(sys.structuralEpoch())}});
  }
  if (!opt_.self_heal) return IndexVerdict::kCorrupt;
  sys.rebuildIndex();
  if (sys.indexFingerprint() == expected.csr &&
      sys.bitmapFingerprint() == expected.bitmap) {
    ++heals_;
    if (c_heals_ != nullptr) c_heals_->add(1);
    verified_epoch_ = sys.structuralEpoch();
    if (opt_.trace != nullptr) {
      opt_.trace->instant(obs::EventKind::kFault, "check.index_heal",
                          {{"slot", static_cast<double>(slot)}});
    }
    return IndexVerdict::kHealed;
  }
  // Even a from-scratch rebuild disagrees with the naive scan: the two
  // geometry readings themselves are inconsistent.  Nothing to heal with.
  issues_.push_back({slot, "index.heal-failed",
                     "rebuilt index still disagrees with the geometry scan"});
  return IndexVerdict::kCorrupt;
}

}  // namespace rfid::check
