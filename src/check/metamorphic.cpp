#include "check/metamorphic.h"

#include <algorithm>
#include <cassert>

#include "workload/rng.h"

namespace rfid::check {

std::vector<int> randomPermutation(int n, std::uint64_t seed) {
  std::vector<int> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  // Explicit Fisher–Yates over Rng::uniformInt: std::shuffle's draw
  // sequence is implementation-defined, and these permutations seed
  // golden-value property tests that must reproduce everywhere.
  workload::Rng rng(seed);
  for (int i = n - 1; i > 0; --i) {
    const int j = rng.uniformInt(0, i);
    std::swap(p[static_cast<std::size_t>(i)], p[static_cast<std::size_t>(j)]);
  }
  return p;
}

Permuted permuteSystem(const core::System& sys, std::uint64_t seed) {
  std::vector<int> reader_of = randomPermutation(
      sys.numReaders(), workload::deriveSeed(seed, "perm-readers"));
  std::vector<int> tag_of = randomPermutation(
      sys.numTags(), workload::deriveSeed(seed, "perm-tags"));
  std::vector<core::Reader> readers;
  readers.reserve(static_cast<std::size_t>(sys.numReaders()));
  for (const int old : reader_of) readers.push_back(sys.reader(old));
  std::vector<core::Tag> tags;
  tags.reserve(static_cast<std::size_t>(sys.numTags()));
  for (const int old : tag_of) tags.push_back(sys.tag(old));
  return Permuted{core::System(std::move(readers), std::move(tags)),
                  std::move(reader_of), std::move(tag_of)};
}

geom::Vec2 RigidMotion::apply(geom::Vec2 p) const {
  for (int i = 0; i < ((quarter_turns % 4) + 4) % 4; ++i) {
    p = {-p.y, p.x};  // exact: negation and a swap, no rounding
  }
  if (mirror) p.x = -p.x;
  return p + translate;
}

core::System transformSystem(const core::System& sys, const RigidMotion& m) {
  std::vector<core::Reader> readers(sys.readers().begin(),
                                    sys.readers().end());
  for (core::Reader& r : readers) r.pos = m.apply(r.pos);
  std::vector<core::Tag> tags(sys.tags().begin(), sys.tags().end());
  for (core::Tag& t : tags) t.pos = m.apply(t.pos);
  return core::System(std::move(readers), std::move(tags));
}

core::System withUncoveredTag(const core::System& sys) {
  double max_x = 0.0;
  double max_y = 0.0;
  double max_gamma = 1.0;
  for (const core::Reader& r : sys.readers()) {
    max_x = std::max(max_x, r.pos.x);
    max_y = std::max(max_y, r.pos.y);
    max_gamma = std::max(max_gamma, r.interrogation_radius);
  }
  core::Tag stray;
  stray.pos = {max_x + 2.0 * max_gamma + 1.0, max_y + 2.0 * max_gamma + 1.0};
  std::vector<core::Reader> readers(sys.readers().begin(),
                                    sys.readers().end());
  std::vector<core::Tag> tags(sys.tags().begin(), sys.tags().end());
  tags.push_back(stray);
  return core::System(std::move(readers), std::move(tags));
}

core::System withInterrogationScaled(const core::System& sys, double factor) {
  assert(factor > 0.0);
  std::vector<core::Reader> readers(sys.readers().begin(),
                                    sys.readers().end());
  for (core::Reader& r : readers) {
    r.interrogation_radius =
        std::min(r.interrogation_radius * factor, r.interference_radius);
  }
  std::vector<core::Tag> tags(sys.tags().begin(), sys.tags().end());
  return core::System(std::move(readers), std::move(tags));
}

}  // namespace rfid::check
