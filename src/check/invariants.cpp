#include "check/invariants.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "fault/fault_plan.h"
#include "geometry/vec2.h"
#include "obs/timer.h"

namespace rfid::check {

namespace {

/// Geometric interrogation coverage, same inclusive boundary as the
/// spatial-grid build (dist² <= γ²).
bool coversGeom(const core::Reader& r, const core::Tag& t) {
  return geom::dist2(r.pos, t.pos) <=
         r.interrogation_radius * r.interrogation_radius;
}

/// RTc victimization: `u` inside radiator `j`'s interference disk
/// (inclusive boundary, matching the referee).
bool victimizes(const core::Reader& j, const core::Reader& u) {
  return geom::dist2(u.pos, j.pos) <=
         j.interference_radius * j.interference_radius;
}

std::string joinInts(std::span<const int> xs, std::size_t cap = 8) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < xs.size() && i < cap; ++i) {
    if (i > 0) os << ",";
    os << xs[i];
  }
  if (xs.size() > cap) os << ",…(" << xs.size() << ")";
  os << "]";
  return os.str();
}

}  // namespace

ScheduleValidator::ScheduleValidator(CheckOptions opt) : opt_(std::move(opt)) {}

void ScheduleValidator::flag(int slot, std::string invariant,
                             std::string detail) {
  ++violations_;
  if (c_violations_ != nullptr) c_violations_->add(1);
  if (opt_.trace != nullptr) {
    opt_.trace->instant(obs::EventKind::kCheck, "check.violation",
                        {{"slot", static_cast<double>(slot)}});
  }
  if (static_cast<int>(issues_.size()) < opt_.max_issues) {
    issues_.push_back({slot, std::move(invariant), std::move(detail)});
  }
}

bool ScheduleValidator::covers(const core::System& sys, int reader,
                               int tag) const {
  return coversGeom(sys.reader(reader), sys.tag(tag));
}

int ScheduleValidator::shadowCoverableCount(const core::System& sys) const {
  int n = 0;
  for (int t = 0; t < sys.numTags(); ++t) {
    if (shadow_[static_cast<std::size_t>(t)] != 0) continue;
    for (int v = 0; v < sys.numReaders(); ++v) {
      if (covers(sys, v, t)) {
        ++n;
        break;
      }
    }
  }
  return n;
}

bool ScheduleValidator::unservableForever(const core::System& sys, int tag,
                                          int slot) const {
  // Mirror of the driver's orphan predicate (sched/mcs.cpp countOrphans),
  // recomputed from geometry: a tag is unservable forever when
  //   1. it sits in a permanently-loud reader's interrogation disk (its
  //      multiplicity is >= 2, or its only coverer reads nothing, in every
  //      future slot); otherwise
  //   2. every geometric coverer is permanently dead or permanently
  //      victimized by a loud-dead reader's stuck transmitter.
  const fault::FaultPlan& plan = *opt_.faults;
  for (int j = 0; j < sys.numReaders(); ++j) {
    if (plan.permanentlyDead(j, slot) && plan.loud(j, slot) &&
        covers(sys, j, tag)) {
      return true;
    }
  }
  for (int v = 0; v < sys.numReaders(); ++v) {
    if (!covers(sys, v, tag)) continue;
    if (plan.permanentlyDead(v, slot)) continue;
    bool victim_forever = false;
    for (int j = 0; j < sys.numReaders(); ++j) {
      if (j != v && plan.permanentlyDead(j, slot) && plan.loud(j, slot) &&
          victimizes(sys.reader(j), sys.reader(v))) {
        victim_forever = true;
        break;
      }
    }
    if (!victim_forever) return false;  // v can still serve `tag`
  }
  return true;
}

bool ScheduleValidator::beginRun(const core::System& sys) {
  const auto n = static_cast<std::size_t>(sys.numTags());
  const auto m = static_cast<std::size_t>(sys.numReaders());
  begun_ = true;
  slots_checked_ = 0;
  tags_scanned_ = 0;
  trailing_stall_ = 0;
  sum_served_ = 0;
  shadow_.assign(n, 0);
  trusted_from_.clear();
  const bool faulty = opt_.faults != nullptr && !opt_.faults->empty();
  if (faulty && opt_.reprobe_interval > 0) trusted_from_.assign(m, 0);
  if (opt_.metrics != nullptr) {
    c_slots_ = &opt_.metrics->counter("check.slots_checked");
    c_violations_ = &opt_.metrics->counter("check.violations");
    c_tags_ = &opt_.metrics->counter("check.tags_scanned");
  }

  // Shadow the read-state and re-derive the coverable census from raw
  // positions — never the CSR arrays we are about to audit.
  const std::span<const char> read = sys.readState();
  initial_unread_ = 0;
  initial_uncoverable_ = 0;
  for (std::size_t t = 0; t < n; ++t) {
    shadow_[t] = read[t] != 0 ? 1 : 0;
    if (shadow_[t] == 0) ++initial_unread_;
  }

  // One-time CSR audit: both coverage directions must equal the geometric
  // ground truth, list for list.  A corrupted offset or index array (the
  // off-by-one mutant class) is caught here, before a single slot runs.
  std::vector<int> expect;
  for (std::size_t v = 0; v < m; ++v) {
    expect.clear();
    for (int t = 0; t < sys.numTags(); ++t) {
      if (covers(sys, static_cast<int>(v), t)) expect.push_back(t);
    }
    const std::span<const int> got = sys.coverage(static_cast<int>(v));
    if (!std::equal(expect.begin(), expect.end(), got.begin(), got.end())) {
      flag(-1, "begin.coverage-csr-mismatch",
           "reader " + std::to_string(v) + ": geometric coverage " +
               joinInts(expect) + " != System::coverage " + joinInts(got));
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    expect.clear();
    for (int v = 0; v < sys.numReaders(); ++v) {
      if (covers(sys, v, static_cast<int>(t))) expect.push_back(v);
    }
    if (expect.empty() && shadow_[t] == 0) ++initial_uncoverable_;
    const std::span<const int> got = sys.coverers(static_cast<int>(t));
    if (!std::equal(expect.begin(), expect.end(), got.begin(), got.end())) {
      flag(-1, "begin.coverers-csr-mismatch",
           "tag " + std::to_string(t) + ": geometric coverers " +
               joinInts(expect) + " != System::coverers " + joinInts(got));
    }
  }
  tags_scanned_ += static_cast<std::int64_t>(n) * static_cast<std::int64_t>(m);
  remaining_coverable_ = initial_unread_ - initial_uncoverable_;

  // The System's own census must agree with the geometric one.
  if (sys.unreadCount() != initial_unread_) {
    flag(-1, "begin.unread-count-mismatch",
         "System::unreadCount " + std::to_string(sys.unreadCount()) +
             " != shadow " + std::to_string(initial_unread_));
  }
  if (sys.unreadCoverableCount() != remaining_coverable_) {
    flag(-1, "begin.coverable-count-mismatch",
         "System::unreadCoverableCount " +
             std::to_string(sys.unreadCoverableCount()) + " != geometric " +
             std::to_string(remaining_coverable_));
  }

  if (c_tags_ != nullptr) c_tags_->add(static_cast<std::int64_t>(n * m));
  if (opt_.trace != nullptr) {
    opt_.trace->instant(obs::EventKind::kCheck, "check.begin",
                        {{"readers", static_cast<double>(m)},
                         {"tags", static_cast<double>(n)},
                         {"coverable", static_cast<double>(remaining_coverable_)}});
  }
  return ok() || !opt_.fail_fast;
}

bool ScheduleValidator::checkSlot(const core::System& sys, int slot,
                                  const sched::OneShotResult& proposal,
                                  std::span<const int> live,
                                  std::span<const int> jamming,
                                  std::span<const int> served) {
  // Wall-clock rides with tracing only (the repo-wide determinism
  // discipline); metrics-only runs still bill the logical check.* counters.
  obs::ScopedTimer span(opt_.trace != nullptr ? opt_.metrics : nullptr,
                        "check.slot_us", opt_.trace, "check.slot",
                        obs::EventKind::kCheck);
  if (!begun_) {
    flag(slot, "api.begin-missing", "checkSlot before beginRun");
    return ok() || !opt_.fail_fast;
  }
  if (slot != static_cast<int>(slots_checked_)) {
    flag(slot, "slot.out-of-order",
         "expected slot " + std::to_string(slots_checked_));
  }

  const fault::FaultPlan* plan = opt_.faults;
  const bool faulty = plan != nullptr && !plan->empty();
  const std::span<const int> X = proposal.readers;

  // -- the proposal is a set of valid reader indices, ascending --
  bool well_formed = true;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (X[i] < 0 || X[i] >= sys.numReaders() || (i > 0 && X[i] <= X[i - 1])) {
      well_formed = false;
      flag(slot, "slot.proposal-not-a-set",
           "readers " + joinInts(X) + " not strictly ascending in range");
      break;
    }
  }

  // -- Definition 2 independence, straight from positions and radii.  The
  // predicate is spelled out here instead of calling core::independent so
  // a bug in (or mutation of) the shared inline cannot blind the oracle to
  // itself — the whole point is an independent recomputation. --
  if (well_formed && opt_.expect_feasible) {
    bool flagged = false;
    for (std::size_t i = 0; i < X.size() && !flagged; ++i) {
      for (std::size_t j = i + 1; j < X.size() && !flagged; ++j) {
        const core::Reader& a = sys.reader(X[i]);
        const core::Reader& b = sys.reader(X[j]);
        const double max_r =
            std::max(a.interference_radius, b.interference_radius);
        if (!(geom::dist2(a.pos, b.pos) > max_r * max_r)) {
          flag(slot, "slot.infeasible",
               "readers " + std::to_string(X[i]) + " and " +
                   std::to_string(X[j]) +
                   " violate ‖v_i−v_j‖ > max(R_i,R_j)");
          flagged = true;  // one flag per slot is enough
        }
      }
    }
  }

  // -- re-derive the referee's crash strip / bench / jamming split --
  std::vector<int> expect_live;
  std::vector<int> expect_jam;
  if (!faulty) {
    expect_live.assign(X.begin(), X.end());
  } else {
    for (const int v : X) {
      if (!trusted_from_.empty() &&
          trusted_from_[static_cast<std::size_t>(v)] > slot) {
        continue;  // benched: the driver re-plans around it
      }
      if (plan->crashed(v, slot)) {
        if (!trusted_from_.empty()) {
          trusted_from_[static_cast<std::size_t>(v)] =
              slot + 1 + opt_.reprobe_interval;
        }
        continue;
      }
      expect_live.push_back(v);
    }
    for (int v = 0; v < sys.numReaders(); ++v) {
      if (plan->loud(v, slot)) expect_jam.push_back(v);
    }
  }
  if (!std::equal(expect_live.begin(), expect_live.end(), live.begin(),
                  live.end())) {
    flag(slot, "slot.live-mismatch",
         "driver executed " + joinInts(live) + ", plan dictates " +
             joinInts(expect_live));
  }
  if (!std::equal(expect_jam.begin(), expect_jam.end(), jamming.begin(),
                  jamming.end())) {
    flag(slot, "slot.jamming-mismatch",
         "driver jammed " + joinInts(jamming) + ", plan dictates " +
             joinInts(expect_jam));
  }

  // -- the naive O(|X|·m) Definition 1 scan over raw geometry --
  // Radiators = live ∪ jamming.  A tag is served iff it is unread, covered
  // by exactly one radiator, and that radiator is a live non-victim.
  std::vector<int> radiators(expect_live);
  radiators.insert(radiators.end(), expect_jam.begin(), expect_jam.end());
  std::vector<char> is_victim(expect_live.size(), 0);
  for (std::size_t i = 0; i < expect_live.size(); ++i) {
    for (const int j : radiators) {
      if (j != expect_live[i] &&
          victimizes(sys.reader(j), sys.reader(expect_live[i]))) {
        is_victim[i] = 1;
        break;
      }
    }
  }
  std::vector<int> expect_served;
  int ideal_weight = 0;  // the proposal's no-fault Definition 3 weight
  for (int t = 0; t < sys.numTags(); ++t) {
    if (shadow_[static_cast<std::size_t>(t)] != 0) continue;
    const core::Tag& tag = sys.tag(t);
    int mult = 0;
    int only = -1;
    for (const int v : radiators) {
      if (coversGeom(sys.reader(v), tag)) {
        ++mult;
        only = v;
      }
    }
    if (mult == 1) {
      // `only` must be live (jamming readers read nothing) and not a victim.
      for (std::size_t i = 0; i < expect_live.size(); ++i) {
        if (expect_live[i] == only) {
          if (is_victim[i] == 0) expect_served.push_back(t);
          break;
        }
      }
    }
    // The no-fault counterfactual on the raw proposal (claimed-weight and
    // progress checks).  Recomputed only when faults changed the radiators;
    // on a clean slot it is exactly |expect_served| (settled below).
    if (faulty) {
      int imult = 0;
      int ionly = -1;
      for (const int v : X) {
        if (coversGeom(sys.reader(v), tag)) {
          ++imult;
          ionly = v;
        }
      }
      if (imult == 1) {
        bool vic = false;
        for (const int j : X) {
          if (j != ionly && victimizes(sys.reader(j), sys.reader(ionly))) {
            vic = true;
            break;
          }
        }
        if (!vic) ++ideal_weight;
      }
    }
  }
  tags_scanned_ += static_cast<std::int64_t>(sys.numTags());
  if (c_tags_ != nullptr) c_tags_->add(sys.numTags());
  if (!faulty) ideal_weight = static_cast<int>(expect_served.size());

  // -- interrogation misses re-drawn from the plan --
  if (faulty && plan->hasMissFaults()) {
    std::vector<int> kept;
    kept.reserve(expect_served.size());
    for (const int t : expect_served) {
      if (!plan->drawMiss(slot, t)) kept.push_back(t);
    }
    expect_served = std::move(kept);
  }

  if (!std::equal(expect_served.begin(), expect_served.end(), served.begin(),
                  served.end())) {
    flag(slot, "slot.served-mismatch",
         "referee served " + joinInts(served) + ", geometry dictates " +
             joinInts(expect_served));
  }

  // -- claimed weight and greedy progress --
  if (opt_.expect_exact_weight && proposal.weight != ideal_weight) {
    flag(slot, "slot.claimed-weight-mismatch",
         "scheduler claimed w=" + std::to_string(proposal.weight) +
             ", naive recount w=" + std::to_string(ideal_weight));
  }
  if (opt_.expect_progress && remaining_coverable_ > 0 && ideal_weight == 0) {
    flag(slot, "slot.zero-weight-commit",
         std::to_string(remaining_coverable_) +
             " coverable tags remain but the committed proposal has zero "
             "no-fault weight");
  }

  // -- monotone read-state growth (served tags must be new) --
  for (const int t : served) {
    if (t < 0 || t >= sys.numTags()) {
      flag(slot, "slot.served-out-of-range", "tag " + std::to_string(t));
      continue;
    }
    if (shadow_[static_cast<std::size_t>(t)] != 0) {
      flag(slot, "slot.reread",
           "tag " + std::to_string(t) + " served twice");
    }
    if (sys.isRead(t)) {
      flag(slot, "slot.premature-commit",
           "tag " + std::to_string(t) + " already read pre-commit");
    }
  }

  if (opt_.level == CheckLevel::kParanoid) {
    // Whole-bitmap agreement at every slot, plus the System's own referee
    // and census re-asked against the naive scan.
    const std::span<const char> read = sys.readState();
    for (int t = 0; t < sys.numTags(); ++t) {
      if ((read[static_cast<std::size_t>(t)] != 0) !=
          (shadow_[static_cast<std::size_t>(t)] != 0)) {
        flag(slot, "paranoid.bitmap-divergence",
             "tag " + std::to_string(t) + " read-state diverged");
        break;
      }
    }
    if (sys.unreadCoverableCount() != remaining_coverable_) {
      flag(slot, "paranoid.coverable-count-mismatch",
           "System says " + std::to_string(sys.unreadCoverableCount()) +
               ", shadow ledger says " +
               std::to_string(remaining_coverable_));
    }
    const int referee_w = sys.weight(X);
    if (referee_w != ideal_weight) {
      flag(slot, "paranoid.referee-weight-mismatch",
           "System::weight " + std::to_string(referee_w) +
               " != naive recount " + std::to_string(ideal_weight));
    }
  }

  // -- commit to the shadow ledger, mirroring the driver's markRead --
  for (const int t : served) {
    if (t < 0 || t >= sys.numTags()) continue;
    if (shadow_[static_cast<std::size_t>(t)] != 0) continue;
    shadow_[static_cast<std::size_t>(t)] = 1;
    // Legitimately served tags are coverable by construction; the geometric
    // guard only matters after a served-mismatch in a non-fail-fast run.
    bool coverable = false;
    for (int v = 0; v < sys.numReaders() && !coverable; ++v) {
      coverable = covers(sys, v, t);
    }
    if (coverable) --remaining_coverable_;
  }
  trailing_stall_ = served.empty() ? trailing_stall_ + 1 : 0;
  sum_served_ += static_cast<std::int64_t>(served.size());
  ++slots_checked_;
  if (c_slots_ != nullptr) c_slots_->add(1);
  span.arg("slot", static_cast<double>(slot));
  span.arg("served", static_cast<double>(served.size()));
  return ok() || !opt_.fail_fast;
}

bool ScheduleValidator::checkRun(const core::System& sys,
                                 const sched::McsResult& res, int max_slots,
                                 int max_stall) {
  if (!begun_) {
    flag(-1, "api.begin-missing", "checkRun before beginRun");
    return ok();
  }
  if (res.slots != static_cast<int>(slots_checked_)) {
    flag(-1, "run.slot-count-mismatch",
         "result reports " + std::to_string(res.slots) + " slots, " +
             std::to_string(slots_checked_) + " were checked");
  }
  if (static_cast<std::int64_t>(res.tags_read) != sum_served_) {
    flag(-1, "run.tags-read-mismatch",
         "result reports " + std::to_string(res.tags_read) +
             " tags read, slots summed to " + std::to_string(sum_served_));
  }
  if (res.uncoverable != initial_uncoverable_) {
    flag(-1, "run.uncoverable-mismatch",
         "result reports " + std::to_string(res.uncoverable) +
             " uncoverable tags, geometry counts " +
             std::to_string(initial_uncoverable_));
  }

  // Final state: the System's bitmap must be exactly the shadow ledger.
  const std::span<const char> read = sys.readState();
  for (int t = 0; t < sys.numTags(); ++t) {
    if ((read[static_cast<std::size_t>(t)] != 0) !=
        (shadow_[static_cast<std::size_t>(t)] != 0)) {
      flag(-1, "run.final-state-divergence",
           "tag " + std::to_string(t) +
               " read-state diverged from the committed slots");
      break;
    }
  }

  // The completion claim, re-derived geometrically.
  const int remaining = shadowCoverableCount(sys);
  tags_scanned_ += static_cast<std::int64_t>(sys.numTags()) *
                   static_cast<std::int64_t>(sys.numReaders());
  if (c_tags_ != nullptr) {
    c_tags_->add(static_cast<std::int64_t>(sys.numTags()) *
                 static_cast<std::int64_t>(sys.numReaders()));
  }
  if (res.completed != (remaining == 0)) {
    flag(-1, "run.completed-claim",
         std::string("result says completed=") +
             (res.completed ? "true" : "false") + " but " +
             std::to_string(remaining) + " coverable tags remain unread");
  }

  // Early-exit legitimacy: an incomplete, uninterrupted run must have hit
  // a cap, stalled out, or orphaned every remaining tag behind permanent
  // faults (the unservable-forever predicate, re-derived from geometry).
  if (!res.completed && !res.interrupted &&
      res.stop == sched::McsStop::kNone && remaining > 0) {
    const bool capped = res.slots >= max_slots;
    const bool stalled = trailing_stall_ >= max_stall;
    bool orphaned = opt_.faults != nullptr && !opt_.faults->empty() &&
                    opt_.faults->hasPermanentDeaths();
    if (orphaned) {
      for (int t = 0; t < sys.numTags() && orphaned; ++t) {
        if (shadow_[static_cast<std::size_t>(t)] != 0) continue;
        bool coverable = false;
        for (int v = 0; v < sys.numReaders() && !coverable; ++v) {
          coverable = covers(sys, v, t);
        }
        if (coverable) orphaned = unservableForever(sys, t, res.slots);
      }
    }
    if (!capped && !stalled && !orphaned) {
      flag(-1, "run.illegitimate-exit",
           "run ended with " + std::to_string(remaining) +
               " servable tags unread: no cap hit (slots " +
               std::to_string(res.slots) + "/" + std::to_string(max_slots) +
               "), no stall-out (trailing " +
               std::to_string(trailing_stall_) + "/" +
               std::to_string(max_stall) + "), not orphaned");
    }
  }

  if (opt_.metrics != nullptr) {
    opt_.metrics->gauge("check.remaining_coverable")
        .set(static_cast<double>(remaining));
  }
  if (opt_.trace != nullptr) {
    opt_.trace->instant(obs::EventKind::kCheck, "check.end",
                        {{"slots", static_cast<double>(slots_checked_)},
                         {"violations", static_cast<double>(violations_)}});
  }
  return ok();
}

void ScheduleValidator::report(std::ostream& os) const {
  if (ok()) return;
  os << "check: " << violations_ << " violation(s)";
  if (violations_ > static_cast<std::int64_t>(issues_.size())) {
    os << " (first " << issues_.size() << " recorded)";
  }
  os << "\n";
  for (const CheckIssue& i : issues_) {
    os << "  [";
    if (i.slot < 0) {
      os << "run";
    } else {
      os << "slot " << i.slot;
    }
    os << "] " << i.invariant << ": " << i.detail << "\n";
  }
}

}  // namespace rfid::check
