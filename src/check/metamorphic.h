// metamorphic.h — deployment transformations with known schedule effects.
//
// Metamorphic testing sidesteps the missing ground truth: we cannot say
// what the optimal covering schedule of a random deployment *is*, but we
// can say how the answer must respond to a transformation of the input
// (docs/testing.md).  This header builds the transformed deployments; the
// property suite (tests/test_metamorphic.cpp) runs the schedulers on both
// sides and asserts the relation:
//
//   * permuteSystem — relabeling readers and tags is a bijection on
//     nothing but indices; every weight, slot count, and tag census is
//     invariant, and schedules map through the permutation.
//   * transformSystem — a rigid motion of the plane preserves all
//     pairwise distances, so independence, coverage, and every weight are
//     invariant.  Quarter turns (x,y) → (−y,x) and the x → −x mirror are
//     *exact* in IEEE double arithmetic (negation is lossless), so those
//     runs must be bit-identical; translation only perturbs at fixed
//     seeds, where the properties still hold for the tested workloads.
//   * withUncoveredTag — a tag outside every interrogation disk can never
//     be served: schedules are untouched, uncoverable goes up by one.
//   * withInterrogationScaled — shrinking every γ by a common factor
//     (β-monotonicity direction) can only shrink the coverable set and,
//     for completed MCS runs, the total tags read.  (Per-set weight w(X)
//     is *not* monotone in β — RRc means a grown disk can add a second
//     coverer and lose a tag — which is why the property speaks of
//     coverable sets and completed-run totals, not of individual slots.)
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "geometry/vec2.h"

namespace rfid::check {

/// A relabeled copy of a System: new index i holds old reader
/// reader_of[i] / old tag tag_of[i].
struct Permuted {
  core::System sys;
  std::vector<int> reader_of;  // new reader index -> old reader index
  std::vector<int> tag_of;     // new tag index -> old tag index
};

/// Deterministic uniform permutation of {0, …, n−1} (Fisher–Yates over the
/// repo's seeded Rng).
std::vector<int> randomPermutation(int n, std::uint64_t seed);

/// Relabels readers and tags by independent random permutations derived
/// from `seed`.  Geometry is untouched; only indices move.
Permuted permuteSystem(const core::System& sys, std::uint64_t seed);

/// A rigid motion of the deployment plane: `quarter_turns` exact 90°
/// rotations (x,y) → (−y,x), an optional mirror x → −x, then a
/// translation.  Quarter turns and the mirror are exact in doubles.
struct RigidMotion {
  int quarter_turns = 0;  // 0..3
  bool mirror = false;
  geom::Vec2 translate;

  geom::Vec2 apply(geom::Vec2 p) const;
};

/// Rebuilds the System with every reader and tag position moved by `m`.
/// Radii and the read-state reset are untouched.
core::System transformSystem(const core::System& sys, const RigidMotion& m);

/// Rebuilds the System with one extra tag placed strictly outside every
/// reader's interrogation disk (beyond the deployment's bounding box by
/// more than the largest γ).  The new tag is appended last.
core::System withUncoveredTag(const core::System& sys);

/// Rebuilds the System with every interrogation radius scaled by `factor`
/// and clamped to (0, R] so the model invariant γ ≤ R holds.  factor < 1
/// moves in the shrinking-β direction of the monotonicity property.
core::System withInterrogationScaled(const core::System& sys, double factor);

}  // namespace rfid::check
