#include "geometry/disk.h"

#include <algorithm>

namespace rfid::geom {

bool Disk::intersects(const Aabb& box) const {
  // Clamp the center onto the box; the disk meets the box iff the clamped
  // point is within `radius` of the center.
  const double cx = std::clamp(center.x, box.lo.x, box.hi.x);
  const double cy = std::clamp(center.y, box.lo.y, box.hi.y);
  return dist2(center, {cx, cy}) <= radius * radius;
}

}  // namespace rfid::geom
