// spatial_grid.h — uniform hash grid over a point set for radius queries.
//
// Weight evaluation (Definition 3) repeatedly asks "which tags lie inside
// this interrogation disk?" and deployment generation asks "which readers
// interfere with this one?".  A uniform grid keyed by integer cell
// coordinates answers both in O(points in the query neighborhood) instead of
// O(n), which matters because the MCS greedy loop evaluates thousands of
// candidate scheduling sets per run.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geometry/vec2.h"

namespace rfid::geom {

/// Immutable spatial index over a fixed point set.
///
/// Build once from the point positions; `queryDisk` then returns the indices
/// of all points within a given radius of a center.  The index never stores
/// copies of the points, only their indices grouped by cell, so it stays
/// cheap for the paper-scale workloads (1200 tags, 50 readers) and scales to
/// the stress workloads used by the microbenchmarks (10^5 points).
class SpatialGrid {
 public:
  /// Constructs an index over `points` with the given cell size.
  ///
  /// `cell_size` should be on the order of the typical query radius; queries
  /// with much larger radii still work but degrade towards a linear scan of
  /// the touched cells.  `cell_size` must be > 0.
  SpatialGrid(std::span<const Vec2> points, double cell_size);

  /// Indices of all points p with ‖p − center‖ ≤ radius, in ascending order.
  std::vector<int> queryDisk(Vec2 center, double radius) const;

  /// Appends the query result to `out` instead of allocating (hot path).
  void queryDisk(Vec2 center, double radius, std::vector<int>& out) const;

  /// Number of indexed points.
  int size() const { return static_cast<int>(points_.size()); }

  double cellSize() const { return cell_size_; }

 private:
  static std::uint64_t cellKey(std::int64_t cx, std::int64_t cy);

  std::vector<Vec2> points_;
  double cell_size_;
  // cell -> indices of points inside it
  std::unordered_map<std::uint64_t, std::vector<int>> cells_;
};

}  // namespace rfid::geom
