// shifted_grid.h — hierarchical (r,s)-shifted grid subdivision (paper §IV).
//
// The PTAS of Tang et al. partitions interference disks into levels by
// radius: level j holds all disks with 1/(k+1)^{j+1} < 2R ≤ 1/(k+1)^j (after
// scaling so the largest radius is 1/2).  For each level j the plane is cut
// by grid lines at multiples of (k+1)^{-j}; an (r,s)-shifting keeps only the
// vertical lines with index ≡ r (mod k) and horizontal lines with index ≡ s
// (mod k).  Two consecutive kept lines bound a *j-square* of side k/(k+1)^j.
//
// Two structural properties make the dynamic program work, and both are
// enforced (and unit-tested) here:
//
//  1. Line hierarchy: a kept line at level j is also a kept line at level
//     j+1 (index v ↦ v(k+1), and v(k+1) ≡ v (mod k)).  Hence every j-square
//     is the disjoint union of exactly (k+1)² (j+1)-squares ("children").
//  2. Nesting: a j-square never crosses a (j−1)-square boundary, so the
//     squares of all levels form a forest.
//
// A level-j disk *survives* the shifting iff it does not intersect the
// boundary of the j-square containing its center.  Surviving disks are
// strictly inside exactly one j-square, which is what lets the DP decompose
// the plane.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/disk.h"
#include "geometry/vec2.h"

namespace rfid::geom {

/// Identifies one square of the shifted subdivision: the square at `level`
/// whose lower-left corner is the intersection of kept vertical line `ix`
/// and kept horizontal line `iy` (indices in level-`level` line units).
struct SquareKey {
  int level = 0;
  std::int64_t ix = 0;
  std::int64_t iy = 0;

  bool operator==(const SquareKey&) const = default;
};

struct SquareKeyHash {
  std::size_t operator()(const SquareKey& s) const {
    auto h = static_cast<unsigned long long>(s.level) * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::uint64_t>(s.ix) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(s.iy) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// One (r,s)-shifted hierarchical subdivision for a fixed parameter k ≥ 2.
///
/// All geometry passed in must already be scaled so that the largest disk
/// radius is 1/2 (see sched::Ptas for the scaling step); the grid itself is
/// agnostic to where the scaling came from.
class ShiftedGrid {
 public:
  /// `k` is the PTAS quality parameter (larger k → finer shifting → better
  /// approximation, Theorem 2).  `shift_r`, `shift_s` ∈ [0, k).
  ShiftedGrid(int k, int shift_r, int shift_s);

  int k() const { return k_; }
  int shiftR() const { return shift_r_; }
  int shiftS() const { return shift_s_; }

  /// Level of a disk of radius `radius` ∈ (0, 1/2]:
  /// the unique j ≥ 0 with 1/(k+1)^{j+1} < 2·radius ≤ 1/(k+1)^j.
  int levelOf(double radius) const;

  /// Distance between adjacent *unshifted* grid lines at `level`:
  /// (k+1)^{-level}.
  double lineSpacing(int level) const;

  /// Side length of a square at `level`: k·(k+1)^{-level}.
  double squareSide(int level) const { return k_ * lineSpacing(level); }

  /// The square at `level` containing point `p` (ties broken towards the
  /// lower-indexed square, consistent with half-open [lo, hi) cells).
  SquareKey containingSquare(Vec2 p, int level) const;

  /// Geometric extent of a square.
  Aabb squareBox(const SquareKey& s) const;

  /// True iff `disk` (whose level must be `level`) survives the shifting:
  /// it lies strictly inside the `level`-square containing its center.
  bool survives(const Disk& disk, int level) const;

  /// The (level−1)-square containing `s`.  Requires s.level ≥ 1.
  SquareKey parent(const SquareKey& s) const;

  /// The (k+1)² squares at level s.level+1 tiling `s`, row-major.
  std::vector<SquareKey> children(const SquareKey& s) const;

  /// True iff `child` is nested (possibly transitively) inside `anc`.
  bool isAncestor(const SquareKey& anc, const SquareKey& child) const;

 private:
  /// Largest kept-line index a ≤ t with a ≡ shift (mod k).
  static std::int64_t alignDown(std::int64_t t, int shift, int k);

  int k_;
  int shift_r_;
  int shift_s_;
};

}  // namespace rfid::geom
