#include "geometry/shifted_grid.h"

#include <cassert>
#include <cmath>

namespace rfid::geom {

ShiftedGrid::ShiftedGrid(int k, int shift_r, int shift_s)
    : k_(k), shift_r_(shift_r), shift_s_(shift_s) {
  assert(k >= 2 && "shifting needs k >= 2");
  assert(shift_r >= 0 && shift_r < k);
  assert(shift_s >= 0 && shift_s < k);
}

int ShiftedGrid::levelOf(double radius) const {
  assert(radius > 0.0 && radius <= 0.5 + 1e-12 &&
         "radii must be scaled so the maximum is 1/2");
  // Find the largest j with 2R ≤ (k+1)^{-j} by exact repeated division;
  // avoids log() rounding surprises at level boundaries.
  const double d = 2.0 * radius;
  double bound = 1.0;
  int j = 0;
  while (d <= bound / (k_ + 1)) {
    bound /= (k_ + 1);
    ++j;
  }
  return j;
}

double ShiftedGrid::lineSpacing(int level) const {
  return std::pow(static_cast<double>(k_ + 1), -static_cast<double>(level));
}

std::int64_t ShiftedGrid::alignDown(std::int64_t t, int shift, int k) {
  // Mathematical (non-negative) modulo so negative coordinates work.
  std::int64_t m = (t - shift) % k;
  if (m < 0) m += k;
  return t - m;
}

SquareKey ShiftedGrid::containingSquare(Vec2 p, int level) const {
  const double spacing = lineSpacing(level);
  const auto tx = static_cast<std::int64_t>(std::floor(p.x / spacing));
  const auto ty = static_cast<std::int64_t>(std::floor(p.y / spacing));
  return {level, alignDown(tx, shift_r_, k_), alignDown(ty, shift_s_, k_)};
}

Aabb ShiftedGrid::squareBox(const SquareKey& s) const {
  const double spacing = lineSpacing(s.level);
  const Vec2 lo{static_cast<double>(s.ix) * spacing,
                static_cast<double>(s.iy) * spacing};
  return {lo, {lo.x + k_ * spacing, lo.y + k_ * spacing}};
}

bool ShiftedGrid::survives(const Disk& disk, int level) const {
  const SquareKey sq = containingSquare(disk.center, level);
  return disk.strictlyInside(squareBox(sq));
}

SquareKey ShiftedGrid::parent(const SquareKey& s) const {
  assert(s.level >= 1 && "level-0 squares are roots");
  // The square's center cannot lie on a coarser grid line (nesting
  // property), so the containing (level−1)-square is well defined.
  const Aabb box = squareBox(s);
  const Vec2 center{(box.lo.x + box.hi.x) / 2.0, (box.lo.y + box.hi.y) / 2.0};
  return containingSquare(center, s.level - 1);
}

std::vector<SquareKey> ShiftedGrid::children(const SquareKey& s) const {
  // In level-(s.level+1) line units, the parent's corner is at index
  // s.ix·(k+1); children corners step by k and there are k+1 of them per
  // axis (the parent spans k(k+1) fine cells).
  std::vector<SquareKey> out;
  out.reserve(static_cast<std::size_t>((k_ + 1) * (k_ + 1)));
  const std::int64_t bx = s.ix * (k_ + 1);
  const std::int64_t by = s.iy * (k_ + 1);
  for (int row = 0; row <= k_; ++row) {
    for (int col = 0; col <= k_; ++col) {
      out.push_back({s.level + 1, bx + static_cast<std::int64_t>(col) * k_,
                     by + static_cast<std::int64_t>(row) * k_});
    }
  }
  return out;
}

bool ShiftedGrid::isAncestor(const SquareKey& anc, const SquareKey& child) const {
  if (child.level < anc.level) return false;
  if (child.level == anc.level) return child == anc;
  SquareKey cur = child;
  while (cur.level > anc.level) cur = parent(cur);
  return cur == anc;
}

}  // namespace rfid::geom
