#include "geometry/spatial_grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rfid::geom {

namespace {
std::int64_t cellCoord(double v, double cell_size) {
  return static_cast<std::int64_t>(std::floor(v / cell_size));
}
}  // namespace

SpatialGrid::SpatialGrid(std::span<const Vec2> points, double cell_size)
    : points_(points.begin(), points.end()), cell_size_(cell_size) {
  assert(cell_size > 0.0 && "cell size must be positive");
  cells_.reserve(points_.size());
  for (int i = 0; i < static_cast<int>(points_.size()); ++i) {
    const auto cx = cellCoord(points_[static_cast<std::size_t>(i)].x, cell_size_);
    const auto cy = cellCoord(points_[static_cast<std::size_t>(i)].y, cell_size_);
    cells_[cellKey(cx, cy)].push_back(i);
  }
}

std::uint64_t SpatialGrid::cellKey(std::int64_t cx, std::int64_t cy) {
  // Interleave-free key: pack two 32-bit offsets.  Deployments are bounded
  // (the paper uses a 100×100 region), so 32 bits per axis is ample.
  const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx));
  const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  return (ux << 32) | uy;
}

std::vector<int> SpatialGrid::queryDisk(Vec2 center, double radius) const {
  std::vector<int> out;
  queryDisk(center, radius, out);
  return out;
}

void SpatialGrid::queryDisk(Vec2 center, double radius,
                            std::vector<int>& out) const {
  const std::size_t first = out.size();
  const double r2 = radius * radius;
  const auto cx0 = cellCoord(center.x - radius, cell_size_);
  const auto cx1 = cellCoord(center.x + radius, cell_size_);
  const auto cy0 = cellCoord(center.y - radius, cell_size_);
  const auto cy1 = cellCoord(center.y + radius, cell_size_);
  for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      const auto it = cells_.find(cellKey(cx, cy));
      if (it == cells_.end()) continue;
      for (const int idx : it->second) {
        if (dist2(points_[static_cast<std::size_t>(idx)], center) <= r2) {
          out.push_back(idx);
        }
      }
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

}  // namespace rfid::geom
