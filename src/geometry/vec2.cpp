#include "geometry/vec2.h"

#include <ostream>

namespace rfid::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace rfid::geom
