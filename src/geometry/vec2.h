// vec2.h — planar vector/point arithmetic for the RFID deployment plane.
//
// All geometry in rfidsched lives in a flat 2-D Euclidean plane, matching the
// deployment model of Tang et al. (IPDPS 2011): readers and tags are points,
// interference/interrogation regions are disks around reader positions.
#pragma once

#include <cmath>
#include <iosfwd>

namespace rfid::geom {

/// A point or displacement in the 2-D deployment plane.
///
/// Vec2 is a plain value type; all operations are non-throwing and
/// constexpr-friendly so geometry predicates can be evaluated in tight loops
/// (weight evaluation touches every covered tag of every candidate reader).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }

  constexpr bool operator==(const Vec2&) const = default;

  /// Squared Euclidean norm; prefer this in comparisons to avoid sqrt.
  constexpr double norm2() const { return x * x + y * y; }
  /// Euclidean norm.
  double norm() const { return std::sqrt(norm2()); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Squared distance between two points (exact, no rounding from sqrt).
constexpr double dist2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Euclidean distance ‖a − b‖ as used in Definition 2 of the paper.
inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace rfid::geom
