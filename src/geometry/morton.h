// morton.h — Z-order (Morton) space-filling curve keys for cache-local
// layout.
//
// The bitmap coverage index (core/system.h) assigns tag bit positions and
// reader row slots by Morton rank of their positions: points close in the
// plane land close in the key order, so one reader's coverage bits cluster
// into few 64-bit words and neighboring readers' rows share cache lines.
// The curve choice only affects locality, never semantics — any bijection
// would produce the same schedules — so plain bit-interleaved Z-order is
// enough (Hilbert's better corner behavior is not worth the table lookups
// here; docs/performance.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "geometry/vec2.h"

namespace rfid::geom {

/// Spreads the low 16 bits of x so bit i lands at bit 2i.
inline std::uint32_t mortonSpread16(std::uint32_t x) {
  x &= 0xffffu;
  x = (x | (x << 8)) & 0x00ff00ffu;
  x = (x | (x << 4)) & 0x0f0f0f0fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

/// 32-bit Morton key from two 16-bit cell coordinates.
inline std::uint32_t mortonKey(std::uint32_t cx, std::uint32_t cy) {
  return mortonSpread16(cx) | (mortonSpread16(cy) << 1);
}

/// Morton rank permutation of a point set: `order[k]` is the index of the
/// k-th point along the Z-curve.  Coordinates are quantized to a 2^16 grid
/// over the bounding box; ties (same cell, degenerate boxes) break by index,
/// so the permutation is deterministic in the input alone.
inline std::vector<int> mortonOrder(std::span<const Vec2> points) {
  std::vector<int> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  if (points.size() < 2) return order;
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const Vec2& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double sx = max_x > min_x ? 65535.0 / (max_x - min_x) : 0.0;
  const double sy = max_y > min_y ? 65535.0 / (max_y - min_y) : 0.0;
  std::vector<std::uint32_t> key(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto cx = static_cast<std::uint32_t>((points[i].x - min_x) * sx);
    const auto cy = static_cast<std::uint32_t>((points[i].y - min_y) * sy);
    key[i] = mortonKey(cx, cy);
  }
  std::sort(order.begin(), order.end(), [&key](int a, int b) {
    return key[static_cast<std::size_t>(a)] != key[static_cast<std::size_t>(b)]
               ? key[static_cast<std::size_t>(a)] < key[static_cast<std::size_t>(b)]
               : a < b;
  });
  return order;
}

}  // namespace rfid::geom
