// disk.h — disks and axis-aligned boxes.
//
// A reader's interference region O(v_i) and interrogation region are both
// modeled as closed disks centered at the reader position (paper §II).  The
// PTAS additionally needs axis-aligned boxes to express grid squares and the
// "survive" predicate (a disk survives iff it does not cross the boundary of
// its level's square).
#pragma once

#include "geometry/vec2.h"

namespace rfid::geom {

/// Closed axis-aligned bounding box [lo.x, hi.x] × [lo.y, hi.y].
struct Aabb {
  Vec2 lo;
  Vec2 hi;

  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// True iff this box and `o` share at least one point.
  constexpr bool intersects(const Aabb& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
};

/// Closed disk { p : ‖p − center‖ ≤ radius }.
struct Disk {
  Vec2 center;
  double radius = 0.0;

  constexpr bool contains(Vec2 p) const {
    return dist2(center, p) <= radius * radius;
  }

  /// True iff the two closed disks share at least one point.
  bool intersects(const Disk& o) const {
    const double r = radius + o.radius;
    return dist2(center, o.center) <= r * r;
  }

  /// True iff the disk lies entirely inside `box` (touching the boundary
  /// counts as *not* inside — the PTAS survive predicate requires strict
  /// clearance from the grid lines).
  constexpr bool strictlyInside(const Aabb& box) const {
    return center.x - radius > box.lo.x && center.x + radius < box.hi.x &&
           center.y - radius > box.lo.y && center.y + radius < box.hi.y;
  }

  /// True iff the disk and the box share at least one point.
  bool intersects(const Aabb& box) const;

  /// Smallest AABB covering the disk.
  constexpr Aabb bounds() const {
    return {{center.x - radius, center.y - radius},
            {center.x + radius, center.y + radius}};
  }
};

}  // namespace rfid::geom
