#include "graph/coloring.h"

#include <algorithm>
#include <numeric>

namespace rfid::graph {

std::vector<int> greedyColoring(const InterferenceGraph& g) {
  const int n = g.numNodes();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&g](int a, int b) {
    return g.degree(a) > g.degree(b);
  });

  std::vector<int> color(static_cast<std::size_t>(n), -1);
  std::vector<char> used;
  for (const int v : order) {
    used.assign(static_cast<std::size_t>(g.degree(v)) + 1, 0);
    for (const int u : g.neighbors(v)) {
      const int c = color[static_cast<std::size_t>(u)];
      if (c >= 0 && c < static_cast<int>(used.size())) used[static_cast<std::size_t>(c)] = 1;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)] != 0) ++c;
    color[static_cast<std::size_t>(v)] = c;
  }
  return color;
}

bool isProperColoring(const InterferenceGraph& g, std::span<const int> colors) {
  for (int v = 0; v < g.numNodes(); ++v) {
    for (const int u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] == colors[static_cast<std::size_t>(v)]) return false;
    }
  }
  return true;
}

int numColors(std::span<const int> colors) {
  int mx = -1;
  for (const int c : colors) mx = std::max(mx, c);
  return mx + 1;
}

std::vector<int> colorClass(std::span<const int> colors, int color) {
  std::vector<int> out;
  for (std::size_t i = 0; i < colors.size(); ++i) {
    if (colors[i] == color) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace rfid::graph
