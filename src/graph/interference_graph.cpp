#include "graph/interference_graph.h"

#include <algorithm>
#include <cassert>

namespace rfid::graph {

InterferenceGraph::InterferenceGraph(const core::System& sys) {
  const int n = sys.numReaders();
  adj_.resize(static_cast<std::size_t>(n));
  // Spatial pruning: index reader positions and query by the maximum
  // interference radius, then apply the exact pairwise predicate.
  double max_r = 1.0;
  for (const core::Reader& r : sys.readers()) {
    max_r = std::max(max_r, r.interference_radius);
  }
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (const core::Reader& r : sys.readers()) pos.push_back(r.pos);
  const geom::SpatialGrid index(pos, max_r);

  std::vector<int> near;
  for (int i = 0; i < n; ++i) {
    near.clear();
    index.queryDisk(sys.reader(i).pos, max_r, near);
    for (const int j : near) {
      if (j <= i) continue;
      if (!sys.independent(i, j)) {
        adj_[static_cast<std::size_t>(i)].push_back(j);
        adj_[static_cast<std::size_t>(j)].push_back(i);
        ++num_edges_;
      }
    }
  }
  for (auto& a : adj_) std::sort(a.begin(), a.end());
}

InterferenceGraph::InterferenceGraph(
    int num_nodes, std::span<const std::pair<int, int>> edges) {
  adj_.resize(static_cast<std::size_t>(num_nodes));
  for (const auto& [u, v] : edges) {
    assert(u != v && "self-loops are not allowed");
    assert(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    adj_[static_cast<std::size_t>(u)].push_back(v);
    adj_[static_cast<std::size_t>(v)].push_back(u);
    ++num_edges_;
  }
  for (auto& a : adj_) {
    std::sort(a.begin(), a.end());
    assert(std::adjacent_find(a.begin(), a.end()) == a.end() &&
           "duplicate edges are not allowed");
  }
}

InterferenceGraph buildSensingGraph(const core::System& sys) {
  const int n = sys.numReaders();
  double max_r = 1.0;
  for (const core::Reader& r : sys.readers()) {
    max_r = std::max(max_r, r.interference_radius);
  }
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (const core::Reader& r : sys.readers()) pos.push_back(r.pos);
  const geom::SpatialGrid index(pos, max_r);

  std::vector<std::pair<int, int>> edges;
  std::vector<int> near;
  for (int i = 0; i < n; ++i) {
    near.clear();
    index.queryDisk(sys.reader(i).pos, 2.0 * max_r, near);
    for (const int j : near) {
      if (j <= i) continue;
      const double reach = sys.reader(i).interference_radius +
                           sys.reader(j).interference_radius;
      if (geom::dist2(sys.reader(i).pos, sys.reader(j).pos) <= reach * reach) {
        edges.emplace_back(i, j);
      }
    }
  }
  return InterferenceGraph(n, edges);
}

bool InterferenceGraph::hasEdge(int u, int v) const {
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(a.begin(), a.end(), v);
}

int InterferenceGraph::maxDegree() const {
  int d = 0;
  for (const auto& a : adj_) d = std::max(d, static_cast<int>(a.size()));
  return d;
}

bool InterferenceGraph::isIndependentSet(std::span<const int> X) const {
  for (std::size_t i = 0; i < X.size(); ++i) {
    for (std::size_t j = i + 1; j < X.size(); ++j) {
      if (X[i] == X[j] || hasEdge(X[i], X[j])) return false;
    }
  }
  return true;
}

}  // namespace rfid::graph
