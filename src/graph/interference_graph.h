// interference_graph.h — the reader interference graph (Definition 7).
//
// Nodes are readers; an edge {i, j} exists iff one reader lies inside the
// other's interference disk (‖v_i − v_j‖ ≤ max(R_i, R_j)), i.e. iff the two
// readers are *not* independent.  Adjacent readers must never be active
// simultaneously (RTc).  The location-free algorithms (Alg 2, Alg 3,
// Colorwave) consume only this graph plus per-reader tag coverage — exactly
// the information an RF site survey provides — never coordinates.
#pragma once

#include <span>
#include <vector>

#include "core/system.h"

namespace rfid::graph {

/// Immutable undirected graph with adjacency lists sorted ascending.
class InterferenceGraph {
 public:
  /// Derives the graph from reader geometry.  This mirrors the paper's RF
  /// site survey: the *construction* uses positions, but consumers of the
  /// resulting graph never see them.
  explicit InterferenceGraph(const core::System& sys);

  /// Builds a graph directly from an edge list (for tests and synthetic
  /// topologies).  Edges may be listed in either orientation; duplicates
  /// and self-loops are rejected by assertion.
  InterferenceGraph(int num_nodes, std::span<const std::pair<int, int>> edges);

  int numNodes() const { return static_cast<int>(adj_.size()); }
  int numEdges() const { return num_edges_; }
  std::span<const int> neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  bool hasEdge(int u, int v) const;
  int degree(int v) const { return static_cast<int>(adj_[static_cast<std::size_t>(v)].size()); }
  int maxDegree() const;

  /// True iff no two members of `X` are adjacent (graph-level feasibility —
  /// identical to core::System::isFeasible when the graph came from that
  /// system, a property the tests assert).
  bool isIndependentSet(std::span<const int> X) const;

 private:
  std::vector<std::vector<int>> adj_;
  int num_edges_ = 0;
};

/// The *sensing* (communication) graph: an edge joins v_i and v_j whenever
/// their interference disks intersect (‖v_i − v_j‖ ≤ R_i + R_j).  This is a
/// supergraph of the interference graph, and — because interrogation disks
/// are contained in interference disks — any two readers that can RRc-cover
/// a common tag are adjacent in it.  The distributed algorithm floods its
/// control messages over this graph: readers whose signals physically reach
/// each other can carrier-sense each other, so coordinators that could
/// cancel each other's tags always learn of each other's selections.
/// Feasibility (Definition 2) still uses the interference graph.
InterferenceGraph buildSensingGraph(const core::System& sys);

}  // namespace rfid::graph
