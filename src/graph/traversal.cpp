#include "graph/traversal.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace rfid::graph {

namespace {

/// Shared BFS core: distances from v, optionally restricted to alive nodes
/// and/or capped at max_hops (-1 = unbounded).
std::vector<int> bfs(const InterferenceGraph& g, int v,
                     std::span<const char> alive, int max_hops) {
  std::vector<int> dist(static_cast<std::size_t>(g.numNodes()), -1);
  assert(alive.empty() || alive[static_cast<std::size_t>(v)] != 0);
  dist[static_cast<std::size_t>(v)] = 0;
  std::queue<int> q;
  q.push(v);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    const int du = dist[static_cast<std::size_t>(u)];
    if (max_hops >= 0 && du >= max_hops) continue;
    for (const int w : g.neighbors(u)) {
      if (!alive.empty() && alive[static_cast<std::size_t>(w)] == 0) continue;
      if (dist[static_cast<std::size_t>(w)] != -1) continue;
      dist[static_cast<std::size_t>(w)] = du + 1;
      q.push(w);
    }
  }
  return dist;
}

std::vector<int> collectWithin(const std::vector<int>& dist, int r) {
  std::vector<int> out;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (dist[i] >= 0 && dist[i] <= r) out.push_back(static_cast<int>(i));
  }
  return out;  // ascending by construction
}

}  // namespace

std::vector<int> kHopNeighborhood(const InterferenceGraph& g, int v, int r) {
  return collectWithin(bfs(g, v, {}, r), r);
}

std::vector<int> kHopNeighborhoodAlive(const InterferenceGraph& g, int v,
                                       int r, std::span<const char> alive) {
  return collectWithin(bfs(g, v, alive, r), r);
}

void kHopNeighborhoodAlive(const InterferenceGraph& g, int v, int r,
                           std::span<const char> alive, BfsScratch& scratch,
                           std::vector<int>& out) {
  assert(r >= 0);
  assert(alive.empty() || alive[static_cast<std::size_t>(v)] != 0);
  const auto n = static_cast<std::size_t>(g.numNodes());
  if (scratch.stamp.size() < n) {
    scratch.stamp.resize(n, 0);
    scratch.dist.resize(n, 0);
  }
  if (++scratch.epoch == 0) {  // epoch wrapped: flush stale stamps once
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  out.clear();
  scratch.queue.clear();
  scratch.stamp[static_cast<std::size_t>(v)] = scratch.epoch;
  scratch.dist[static_cast<std::size_t>(v)] = 0;
  scratch.queue.push_back(v);
  // The hop cap bounds the whole traversal, so the visited set IS the
  // answer — collect as we go, sort once at the end.
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const int u = scratch.queue[head];
    const int du = scratch.dist[static_cast<std::size_t>(u)];
    if (du >= r) continue;
    for (const int w : g.neighbors(u)) {
      if (!alive.empty() && alive[static_cast<std::size_t>(w)] == 0) continue;
      if (scratch.stamp[static_cast<std::size_t>(w)] == scratch.epoch) continue;
      scratch.stamp[static_cast<std::size_t>(w)] = scratch.epoch;
      scratch.dist[static_cast<std::size_t>(w)] = du + 1;
      scratch.queue.push_back(w);
    }
  }
  out.assign(scratch.queue.begin(), scratch.queue.end());
  std::sort(out.begin(), out.end());
}

std::vector<int> hopDistances(const InterferenceGraph& g, int v) {
  return bfs(g, v, {}, -1);
}

std::vector<int> hopDistancesAlive(const InterferenceGraph& g, int v,
                                   std::span<const char> alive) {
  return bfs(g, v, alive, -1);
}

std::vector<int> components(const InterferenceGraph& g) {
  const int n = g.numNodes();
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    if (comp[static_cast<std::size_t>(v)] != -1) continue;
    const auto dist = bfs(g, v, {}, -1);
    for (int u = 0; u < n; ++u) {
      if (dist[static_cast<std::size_t>(u)] >= 0) comp[static_cast<std::size_t>(u)] = next;
    }
    ++next;
  }
  return comp;
}

std::vector<int> growthProfile(const InterferenceGraph& g, int v, int max_r) {
  const auto dist = bfs(g, v, {}, max_r);
  std::vector<int> profile(static_cast<std::size_t>(max_r) + 1, 0);
  for (const int d : dist) {
    if (d < 0) continue;
    for (int r = d; r <= max_r; ++r) ++profile[static_cast<std::size_t>(r)];
  }
  return profile;
}

}  // namespace rfid::graph
