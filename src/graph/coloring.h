// coloring.h — graph coloring utilities.
//
// Colorwave assigns time-slots by coloring the interference graph; a proper
// coloring's color classes are independent sets, hence feasible scheduling
// sets.  Besides the distributed Colorwave node program (src/distributed),
// the library ships a deterministic greedy coloring used as a centralized
// reference and by the tests to sanity-check the distributed outcome.
#pragma once

#include <span>
#include <vector>

#include "graph/interference_graph.h"

namespace rfid::graph {

/// Greedy (first-fit) coloring in largest-degree-first order.
/// Uses at most maxDegree+1 colors.  Returns color per node (0-based).
std::vector<int> greedyColoring(const InterferenceGraph& g);

/// True iff no edge joins two nodes of equal color.
bool isProperColoring(const InterferenceGraph& g, std::span<const int> colors);

/// Number of distinct colors used (max + 1); 0 for an empty graph.
int numColors(std::span<const int> colors);

/// Nodes of one color class, ascending.
std::vector<int> colorClass(std::span<const int> colors, int color);

}  // namespace rfid::graph
