// traversal.h — BFS neighborhoods and hop distances on the interference
// graph.
//
// The location-free algorithms are built around r-hop neighborhoods:
//   N(v)^r = { u : hop-distance(u, v) ≤ r }  (paper, Table I / §V).
// Algorithm 2 grows N(v)^r until the weight stops improving geometrically;
// Algorithm 3 floods information through N(v)^{2c+2}.  These helpers keep
// the hop semantics in one place so the centralized and distributed code
// paths provably agree.
#pragma once

#include <span>
#include <vector>

#include "graph/interference_graph.h"

namespace rfid::graph {

/// Nodes with hop-distance ≤ r from v (includes v itself at distance 0),
/// ascending order.
std::vector<int> kHopNeighborhood(const InterferenceGraph& g, int v, int r);

/// Like kHopNeighborhood but restricted to nodes for which alive[u] != 0.
/// Paths must stay inside the alive subgraph — "removed" nodes (paper's
/// N^{r+1} deletion, Algorithm 2 line 5) do not relay hops.
std::vector<int> kHopNeighborhoodAlive(const InterferenceGraph& g, int v,
                                       int r, std::span<const char> alive);

/// Reusable buffers for the bounded BFS below.  Visited marks are epoch
/// stamps, so nothing is cleared between calls: one query costs only the
/// neighborhood it returns, not O(numNodes).  One scratch per thread.
struct BfsScratch {
  std::vector<std::uint32_t> stamp;  // visit epoch per node
  std::vector<int> dist;             // hop distance, valid when stamp matches
  std::vector<int> queue;            // frontier, head-indexed (no pops)
  std::uint32_t epoch = 0;
};

/// kHopNeighborhoodAlive with caller-owned scratch and output buffer —
/// bit-identical result (ascending), no per-call allocation or O(n) scan.
/// The growth-bounded scheduler calls this thousands of times per schedule
/// on neighborhoods far smaller than the graph (docs/performance.md).
void kHopNeighborhoodAlive(const InterferenceGraph& g, int v, int r,
                           std::span<const char> alive, BfsScratch& scratch,
                           std::vector<int>& out);

/// Hop distance from v to every node; -1 for unreachable.
std::vector<int> hopDistances(const InterferenceGraph& g, int v);

/// Hop distances from v restricted to the alive subgraph (v must be alive).
std::vector<int> hopDistancesAlive(const InterferenceGraph& g, int v,
                                   std::span<const char> alive);

/// Connected components; returns component id per node (0-based, dense).
std::vector<int> components(const InterferenceGraph& g);

/// The growth function of the graph around v: f(r) = |N(v)^r|.  Used by the
/// tests to check the growth-bounded property the paper's Theorems 3 and 5
/// rely on (polynomial growth in r for geometric interference graphs).
std::vector<int> growthProfile(const InterferenceGraph& g, int v, int max_r);

}  // namespace rfid::graph
