#include "sched/mcs.h"

#include <algorithm>

#include "check/invariants.h"
#include "ckpt/journal.h"
#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "obs/timer.h"

namespace rfid::sched {

/// Waiting for an orphaned tag would only spin the stall counter.  Three
/// ways a permanent (never-recovering) failure orphans a tag at `slot`:
///   1. every coverer is permanently dead;
///   2. the tag sits in a permanently-loud reader's interrogation disk, so
///      its coverage multiplicity is >= 2 in every future slot (RRc);
///   3. every coverer not permanently dead sits inside a permanently-loud
///      reader's interference disk, i.e. is an RTc victim forever.
int countMcsOrphans(const core::System& sys, const fault::FaultPlan& plan,
                    int slot) {
  std::vector<char> jammed_tag(static_cast<std::size_t>(sys.numTags()), 0);
  std::vector<char> victim(static_cast<std::size_t>(sys.numReaders()), 0);
  for (int j = 0; j < sys.numReaders(); ++j) {
    if (!plan.permanentlyDead(j, slot) || !plan.loud(j, slot)) continue;
    for (const int t : sys.coverage(j)) {
      jammed_tag[static_cast<std::size_t>(t)] = 1;
    }
    const core::Reader& jr = sys.reader(j);
    const double rj2 = jr.interference_radius * jr.interference_radius;
    for (int v = 0; v < sys.numReaders(); ++v) {
      if (v != j && geom::dist2(sys.reader(v).pos, jr.pos) <= rj2) {
        victim[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  int orphans = 0;
  for (int t = 0; t < sys.numTags(); ++t) {
    if (sys.isRead(t)) continue;
    const std::span<const int> cov = sys.coverers(t);
    if (cov.empty()) continue;
    bool unservable = true;
    if (jammed_tag[static_cast<std::size_t>(t)] == 0) {
      for (const int v : cov) {
        if (!plan.permanentlyDead(v, slot) &&
            victim[static_cast<std::size_t>(v)] == 0) {
          unservable = false;
          break;
        }
      }
    }
    orphans += unservable ? 1 : 0;
  }
  return orphans;
}

namespace {

/// BudgetStop -> McsStop (kNone only when the budget did not fire).
McsStop budgetStop(ckpt::BudgetStop bs) {
  switch (bs) {
    case ckpt::BudgetStop::kSlotCap: return McsStop::kSlotCap;
    case ckpt::BudgetStop::kDeadline: return McsStop::kDeadline;
    case ckpt::BudgetStop::kCancelled: return McsStop::kCancelled;
    case ckpt::BudgetStop::kNone: break;
  }
  return McsStop::kCancelled;
}

}  // namespace

const char* mcsStopName(McsStop s) {
  switch (s) {
    case McsStop::kNone: return "none";
    case McsStop::kSlotCap: return "slot-cap";
    case McsStop::kDeadline: return "deadline";
    case McsStop::kCancelled: return "cancelled";
    case McsStop::kJournalError: return "journal-error";
    case McsStop::kReplayMismatch: return "replay-mismatch";
    case McsStop::kCheckFailed: return "check-failed";
  }
  return "?";
}

McsResult runCoveringSchedule(core::System& sys, OneShotScheduler& scheduler,
                              const McsOptions& opt) {
  McsResult res;
  res.uncoverable = sys.unreadCount() - sys.unreadCoverableCount();

  // Root of the causal span tree; every mcs.slot span (and, through the
  // thread stack, the scheduler spans under it) nests here.  Wall-clock
  // histogram only when tracing, like the per-slot spans.
  obs::ScopedTimer run_span(opt.trace != nullptr ? opt.metrics : nullptr,
                            "mcs.run_us", opt.trace, "mcs.run");

  // The whole fault machinery is gated on one flag: with no plan (or an
  // all-zero one) every slot takes exactly the pre-fault sequence of calls,
  // so such runs are bit-identical to the un-instrumented driver.
  const fault::FaultPlan* plan = opt.faults;
  const bool faulty = plan != nullptr && !plan->empty();

  // Resolve counter handles once; the loop then pays one pointer test per
  // slot when observability is detached.
  obs::Counter* c_slots = nullptr;
  obs::Counter* c_tags = nullptr;
  obs::Counter* c_stalls = nullptr;
  obs::Histogram* h_proposed = nullptr;
  obs::Histogram* h_tags = nullptr;
  if (opt.metrics != nullptr) {
    c_slots = &opt.metrics->counter("mcs.slots");
    c_tags = &opt.metrics->counter("mcs.tags_read");
    c_stalls = &opt.metrics->counter("mcs.stall_slots");
    h_proposed = &opt.metrics->histogram("mcs.slot_proposed_readers");
    h_tags = &opt.metrics->histogram("mcs.slot_tags_read");
  }
  // fault.mcs.* counters exist only on fault-injected runs so that clean
  // runs export the exact pre-fault metrics JSON.
  obs::Counter* c_crashed = nullptr;
  obs::Counter* c_replanned = nullptr;
  obs::Counter* c_missed = nullptr;
  obs::Counter* c_faulty_slots = nullptr;
  obs::Counter* c_slots_lost = nullptr;
  if (opt.metrics != nullptr && faulty) {
    c_crashed = &opt.metrics->counter("fault.mcs.crashed_activations");
    c_replanned = &opt.metrics->counter("fault.mcs.replanned_activations");
    c_missed = &opt.metrics->counter("fault.mcs.tags_missed");
    c_faulty_slots = &opt.metrics->counter("fault.mcs.faulty_slots");
    c_slots_lost = &opt.metrics->counter("fault.mcs.slots_lost");
  }
  // ckpt.* counters are *logical*: they count committed slots and due
  // snapshot boundaries, bumped identically whether a slot is replay-
  // verified or freshly appended, so a resumed run exports the exact
  // metrics JSON of the uninterrupted one.  Physical IO detail (replay
  // spans, snapshot writes) rides on kCkpt trace events only.  They exist
  // only when checkpointing is attached, keeping plain runs bit-identical
  // to the pre-checkpoint driver.
  const bool checkpointing = opt.journal != nullptr || opt.resume != nullptr;
  obs::Counter* c_ckpt_slots = nullptr;
  obs::Counter* c_ckpt_snaps = nullptr;
  if (opt.metrics != nullptr && checkpointing) {
    c_ckpt_slots = &opt.metrics->counter("ckpt.slots_committed");
    c_ckpt_snaps = &opt.metrics->counter("ckpt.snapshots");
  }

  // Failure-detector memory: reader -> first slot at which it is trusted
  // again.  Populated when a crashed activation is observed, consulted to
  // strip ("re-plan around") benched readers from later proposals.
  std::vector<int> trusted_from;
  if (faulty && opt.reprobe_interval > 0) {
    trusted_from.assign(static_cast<std::size_t>(sys.numReaders()), 0);
  }

  // The oracle refuses to referee a System whose derived structures already
  // contradict raw geometry (fail-fast only; otherwise it records the
  // violations and watches the run anyway).
  bool check_failed = false;
  if (opt.validator != nullptr && !opt.validator->beginRun(sys)) {
    res.stop = McsStop::kCheckFailed;
    check_failed = true;
  }

  int stall = 0;
  while (!check_failed && sys.unreadCoverableCount() > 0 &&
         res.slots < opt.max_slots) {
    if (opt.budget != nullptr) {
      const ckpt::BudgetStop bs = opt.budget->charge(res.slots);
      if (bs != ckpt::BudgetStop::kNone) {
        res.interrupted = true;
        res.stop = budgetStop(bs);
        break;
      }
    }
    if (opt.progress != nullptr) {
      opt.progress->fetch_add(1, std::memory_order_relaxed);
    }
    const int q = res.slots;  // slot index the fault plan speaks in
    // While a resume journal still has records ahead of q we are replaying:
    // the slot is recomputed through this exact loop body and verified
    // against its record instead of being appended.
    const bool replaying =
        opt.resume != nullptr &&
        q < static_cast<int>(opt.resume->slots.size());
    if (faulty && plan->hasPermanentDeaths()) {
      const int orphans = countMcsOrphans(sys, *plan, q);
      if (orphans >= sys.unreadCoverableCount()) {
        res.degradation.tags_orphaned = orphans;
        break;  // everything still unread is unservable forever
      }
    }
    if (opt.channel != nullptr) opt.channel->setSlot(q);

    // Baseline for this slot's bill: committed slots get the ledger delta
    // accrued between here and the commit point below.
    obs::CostBill slot_base;
    if (opt.cost != nullptr) slot_base = opt.cost->total();

    // Wall-clock span only when tracing (see McsOptions doc).
    obs::ScopedTimer span(opt.trace != nullptr ? opt.metrics : nullptr,
                          "mcs.slot_us", opt.trace, "mcs.slot",
                          obs::EventKind::kSlot);
    const OneShotResult one = scheduler.schedule(sys);
    if (opt.budget != nullptr && opt.budget->token().cancelled()) {
      // The proposal was (or may have been) computed under a fired token —
      // the scheduler could have returned a truncated search result.
      // Discard it, so the committed prefix of an interrupted run is always
      // a prefix of the uninterrupted trajectory (the anytime contract).
      res.interrupted = true;
      res.stop = budgetStop(opt.budget->charge(res.slots));
      break;
    }

    std::vector<int> served;
    int crashed_here = 0;
    int replanned_here = 0;
    int missed_here = 0;
    int ideal_here = 0;
    bool slot_faulty = false;
    bool slot_lost = false;
    // Hoisted from the faulty branch so the validator can see the executed
    // split; on the clean path both stay empty (no allocation, no referee
    // change).
    std::vector<int> live;
    std::vector<int> jamming;
    if (!faulty) {
      served = sys.wellCoveredTags(one.readers);
    } else {
      // Split the proposal: benched readers are stripped (the driver
      // re-planned around a known failure), crashed ones read nothing.
      live.reserve(one.readers.size());
      for (const int v : one.readers) {
        if (!trusted_from.empty() && trusted_from[static_cast<std::size_t>(v)] > q) {
          ++replanned_here;
          continue;
        }
        if (plan->crashed(v, q)) {
          ++crashed_here;
          if (!trusted_from.empty()) {
            trusted_from[static_cast<std::size_t>(v)] = q + 1 + opt.reprobe_interval;
          }
          continue;
        }
        live.push_back(v);
      }
      // Every loud-crashed reader jams while crashed, proposed or not — a
      // stuck transmitter does not wait for an activation and re-planning
      // cannot silence it.  The referee charges its RRc multiplicity and
      // RTc victimization against the live set.
      for (const int v : plan->loudAt(q)) {
        if (v >= 0 && v < sys.numReaders()) jamming.push_back(v);
      }
      served = sys.wellCoveredTags(live, jamming);
      // Interrogation misses: a well-covered tag can still fail its
      // inventory round; it stays unread and future slots retry it.
      if (plan->hasMissFaults()) {
        std::vector<int> kept;
        kept.reserve(served.size());
        for (const int t : served) {
          if (plan->drawMiss(q, t)) {
            ++missed_here;
          } else {
            kept.push_back(t);
          }
        }
        served = std::move(kept);
      }
      // The no-fault counterfactual for degradation accounting: what this
      // exact proposal would have served on ideal hardware.
      ideal_here = static_cast<int>(sys.wellCoveredTags(one.readers).size());
      res.degradation.ideal_tags_read += ideal_here;
      res.degradation.crashed_activations += crashed_here;
      res.degradation.replanned_activations += replanned_here;
      res.degradation.tags_missed += missed_here;
      slot_faulty =
          crashed_here + replanned_here + missed_here > 0 ||
          (!jamming.empty() && static_cast<int>(served.size()) != ideal_here);
      slot_lost = slot_faulty && served.empty() && ideal_here > 0;
      res.degradation.faulty_slots += slot_faulty ? 1 : 0;
      res.degradation.slots_lost += slot_lost ? 1 : 0;
      if (c_crashed != nullptr) {
        c_crashed->add(crashed_here);
        c_replanned->add(replanned_here);
        c_missed->add(missed_here);
        if (slot_faulty) c_faulty_slots->add(1);
        if (slot_lost) c_slots_lost->add(1);
      }
      if (opt.trace != nullptr && slot_faulty) {
        opt.trace->instant(
            obs::EventKind::kFault, "fault.mcs.slot",
            {{"slot", static_cast<double>(q)},
             {"crashed", static_cast<double>(crashed_here)},
             {"replanned", static_cast<double>(replanned_here)},
             {"missed", static_cast<double>(missed_here)},
             {"served", static_cast<double>(served.size())},
             {"ideal", static_cast<double>(ideal_here)}});
      }
    }

    // The referee's own deterministic work: one wellCoveredTags evaluation
    // on the clean path; the faulty path adds the jam-aware split and the
    // ideal counterfactual.  csr_rows counts the coverage rows each
    // evaluation walks (one per activated/jamming reader).
    if (opt.cost != nullptr) {
      obs::CostBill ref;
      if (!faulty) {
        ref.weight_evals = 1;
        ref.csr_rows = static_cast<std::int64_t>(one.readers.size());
      } else {
        ref.weight_evals = 2;
        ref.csr_rows = static_cast<std::int64_t>(
            live.size() + jamming.size() + one.readers.size());
      }
      opt.cost->charge("mcs.referee", ref);
    }

    // The oracle re-derives this slot's verdict from raw geometry and the
    // plan before anything is made durable: a fail-fast violation aborts
    // with the slot neither journaled nor marked read.
    if (opt.validator != nullptr &&
        !opt.validator->checkSlot(
            sys, q, one,
            faulty ? std::span<const int>(live)
                   : std::span<const int>(one.readers),
            jamming, served)) {
      res.stop = McsStop::kCheckFailed;
      break;
    }

    if (checkpointing) {
      // The journal record of this slot: everything the replay validator
      // needs to re-verify the deterministic recomputation above.
      ckpt::SlotEntry entry;
      entry.slot = q;
      entry.active = one.readers;
      entry.served = served;
      entry.crashed = crashed_here;
      entry.replanned = replanned_here;
      entry.missed = missed_here;
      entry.ideal = ideal_here;
      entry.faulty = slot_faulty;
      entry.lost = slot_lost;
      entry.epoch = faulty ? plan->epochAt(q) : 0;
      entry.fp = scheduler.stateFingerprint();
      if (replaying) {
        if (!(entry == opt.resume->slots[static_cast<std::size_t>(q)])) {
          // The replay diverged from the recorded run — different binary,
          // environment, or a corrupted-but-CRC-valid record.  Fail closed
          // without committing the divergent slot.
          res.stop = McsStop::kReplayMismatch;
          break;
        }
      } else if (opt.journal != nullptr) {
        if (!opt.journal->appendSlot(entry)) {
          // Could not make the slot durable (disk full, journal closed):
          // stop before committing it, so the journal and the returned
          // result agree on the committed prefix.
          res.stop = McsStop::kJournalError;
          break;
        }
      }
    }
    sys.markRead(served);
    if (opt.on_commit) opt.on_commit(res.slots, one.readers, served);

    SlotRecord rec;
    rec.active = one.readers;
    rec.tags_read = static_cast<int>(served.size());
    res.schedule.push_back(std::move(rec));
    ++res.slots;
    res.tags_read += static_cast<int>(served.size());

    if (opt.cost != nullptr) {
      // The slot is committed: its bill is everything charged since the
      // slot's baseline (scheduler phases + referee).  Aborted slots never
      // reach here, so Σ slot bills tracks the committed prefix exactly.
      obs::CostBill slot_bill = opt.cost->total();
      slot_bill.subtract(slot_base);
      opt.cost->commitSlot(slot_bill);
    }

    if (served.empty()) {
      ++stall;
    } else {
      stall = 0;
    }

    if (c_slots != nullptr) {
      c_slots->add(1);
      c_tags->add(static_cast<std::int64_t>(served.size()));
      if (served.empty()) c_stalls->add(1);
      h_proposed->record(static_cast<double>(one.readers.size()));
      h_tags->record(static_cast<double>(served.size()));
    }
    if (opt.trace != nullptr) {
      span.arg("slot", static_cast<double>(res.slots));
      span.arg("proposed", static_cast<double>(one.readers.size()));
      span.arg("claimed_weight", static_cast<double>(one.weight));
      span.arg("delivered", static_cast<double>(served.size()));
      span.arg("stall", static_cast<double>(stall));
    }

    if (checkpointing) {
      if (c_ckpt_slots != nullptr) c_ckpt_slots->add(1);
      if (replaying) {
        ++res.replayed_slots;
        // Cross-check the loaded snapshot against the replayed read-state
        // at its boundary: a bitmap that disagrees with the journal it
        // rode beside means one of the two is lying.
        if (opt.resume->snapshot.has_value() &&
            opt.resume->snapshot->slot == res.slots) {
          const ckpt::Snapshot& snap = *opt.resume->snapshot;
          bool match = static_cast<int>(snap.read.size()) == sys.numTags();
          for (int t = 0; match && t < sys.numTags(); ++t) {
            match = (snap.read[static_cast<std::size_t>(t)] != 0) ==
                    sys.isRead(t);
          }
          if (!match) {
            res.stop = McsStop::kReplayMismatch;
            break;
          }
        }
      }
      if (opt.journal != nullptr && opt.journal->snapshotDue(res.slots)) {
        if (c_ckpt_snaps != nullptr) c_ckpt_snaps->add(1);
        if (!replaying) {
          ckpt::Snapshot snap;
          snap.slot = res.slots;
          snap.read.resize(static_cast<std::size_t>(sys.numTags()), 0);
          for (int t = 0; t < sys.numTags(); ++t) {
            snap.read[static_cast<std::size_t>(t)] = sys.isRead(t) ? 1 : 0;
          }
          if (!opt.journal->writeSnapshot(snap)) {
            res.stop = McsStop::kJournalError;
            break;
          }
          if (opt.trace != nullptr) {
            opt.trace->instant(obs::EventKind::kCkpt, "ckpt.snapshot",
                               {{"slot", static_cast<double>(res.slots)}});
          }
        }
      }
    }

    if (served.empty() && stall >= opt.max_stall) break;
  }
  if (res.stop == McsStop::kNone && !res.interrupted &&
      opt.resume != nullptr &&
      res.replayed_slots < static_cast<int>(opt.resume->slots.size())) {
    // Natural termination (covered / stalled / slot cap) with journal
    // records still unconsumed: the recorded run committed slots past the
    // point where this trajectory ends, so the two diverged.  Fail closed.
    res.stop = McsStop::kReplayMismatch;
  }
  res.completed = sys.unreadCoverableCount() == 0;
  if (faulty && plan->hasPermanentDeaths() &&
      res.degradation.tags_orphaned == 0) {
    // Caps may have ended the loop before the orphan check ran; settle the
    // final accounting against the last executed slot.
    res.degradation.tags_orphaned =
        countMcsOrphans(sys, *plan, res.slots > 0 ? res.slots - 1 : 0);
  }
  // Run postconditions.  Skipped when the run already failed closed mid-slot
  // (check / journal / replay): those paths leave a checked-but-uncommitted
  // slot behind, so the oracle's ledger legitimately leads the System.
  if (opt.validator != nullptr && res.stop != McsStop::kCheckFailed &&
      res.stop != McsStop::kJournalError &&
      res.stop != McsStop::kReplayMismatch) {
    if (!opt.validator->checkRun(sys, res, opt.max_slots, opt.max_stall)) {
      res.stop = McsStop::kCheckFailed;
    }
  }
  if (opt.metrics != nullptr && faulty) {
    opt.metrics->gauge("fault.mcs.tags_orphaned")
        .set(static_cast<double>(res.degradation.tags_orphaned));
    opt.metrics->gauge("fault.mcs.ideal_tags_read")
        .set(static_cast<double>(res.degradation.ideal_tags_read));
  }

  if (opt.trace != nullptr && res.replayed_slots > 0) {
    opt.trace->instant(obs::EventKind::kCkpt, "ckpt.replay",
                       {{"slots", static_cast<double>(res.replayed_slots)}});
  }
  if (opt.trace != nullptr) {
    opt.trace->instant(obs::EventKind::kSpan, "mcs.done",
                       {{"slots", static_cast<double>(res.slots)},
                        {"tags_read", static_cast<double>(res.tags_read)},
                        {"completed", res.completed ? 1.0 : 0.0}});
  }
  return res;
}

}  // namespace rfid::sched
