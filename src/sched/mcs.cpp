#include "sched/mcs.h"

namespace rfid::sched {

McsResult runCoveringSchedule(core::System& sys, OneShotScheduler& scheduler,
                              const McsOptions& opt) {
  McsResult res;
  res.uncoverable = sys.unreadCount() - sys.unreadCoverableCount();

  int stall = 0;
  while (sys.unreadCoverableCount() > 0 && res.slots < opt.max_slots) {
    const OneShotResult one = scheduler.schedule(sys);
    const std::vector<int> served = sys.wellCoveredTags(one.readers);
    sys.markRead(served);

    SlotRecord rec;
    rec.active = one.readers;
    rec.tags_read = static_cast<int>(served.size());
    res.schedule.push_back(std::move(rec));
    ++res.slots;
    res.tags_read += static_cast<int>(served.size());

    if (served.empty()) {
      if (++stall >= opt.max_stall) break;
    } else {
      stall = 0;
    }
  }
  res.completed = sys.unreadCoverableCount() == 0;
  return res;
}

}  // namespace rfid::sched
