#include "sched/mcs.h"

#include "obs/timer.h"

namespace rfid::sched {

McsResult runCoveringSchedule(core::System& sys, OneShotScheduler& scheduler,
                              const McsOptions& opt) {
  McsResult res;
  res.uncoverable = sys.unreadCount() - sys.unreadCoverableCount();

  // Resolve counter handles once; the loop then pays one pointer test per
  // slot when observability is detached.
  obs::Counter* c_slots = nullptr;
  obs::Counter* c_tags = nullptr;
  obs::Counter* c_stalls = nullptr;
  obs::Histogram* h_proposed = nullptr;
  obs::Histogram* h_tags = nullptr;
  if (opt.metrics != nullptr) {
    c_slots = &opt.metrics->counter("mcs.slots");
    c_tags = &opt.metrics->counter("mcs.tags_read");
    c_stalls = &opt.metrics->counter("mcs.stall_slots");
    h_proposed = &opt.metrics->histogram("mcs.slot_proposed_readers");
    h_tags = &opt.metrics->histogram("mcs.slot_tags_read");
  }

  int stall = 0;
  while (sys.unreadCoverableCount() > 0 && res.slots < opt.max_slots) {
    // Wall-clock span only when tracing (see McsOptions doc).
    obs::ScopedTimer span(opt.trace != nullptr ? opt.metrics : nullptr,
                          "mcs.slot_us", opt.trace, "mcs.slot",
                          obs::EventKind::kSlot);
    const OneShotResult one = scheduler.schedule(sys);
    const std::vector<int> served = sys.wellCoveredTags(one.readers);
    sys.markRead(served);

    SlotRecord rec;
    rec.active = one.readers;
    rec.tags_read = static_cast<int>(served.size());
    res.schedule.push_back(std::move(rec));
    ++res.slots;
    res.tags_read += static_cast<int>(served.size());

    if (served.empty()) {
      ++stall;
    } else {
      stall = 0;
    }

    if (c_slots != nullptr) {
      c_slots->add(1);
      c_tags->add(static_cast<std::int64_t>(served.size()));
      if (served.empty()) c_stalls->add(1);
      h_proposed->record(static_cast<double>(one.readers.size()));
      h_tags->record(static_cast<double>(served.size()));
    }
    if (opt.trace != nullptr) {
      span.arg("slot", static_cast<double>(res.slots));
      span.arg("proposed", static_cast<double>(one.readers.size()));
      span.arg("claimed_weight", static_cast<double>(one.weight));
      span.arg("delivered", static_cast<double>(served.size()));
      span.arg("stall", static_cast<double>(stall));
    }

    if (served.empty() && stall >= opt.max_stall) break;
  }
  res.completed = sys.unreadCoverableCount() == 0;

  if (opt.trace != nullptr) {
    opt.trace->instant(obs::EventKind::kSpan, "mcs.done",
                       {{"slots", static_cast<double>(res.slots)},
                        {"tags_read", static_cast<double>(res.tags_read)},
                        {"completed", res.completed ? 1.0 : 0.0}});
  }
  return res;
}

}  // namespace rfid::sched
