// scheduler.h — the one-shot scheduler interface (Definition 6).
//
// A OneShotScheduler answers one question: given the current system state
// (deployment + which tags are still unread), which feasible scheduling set
// should be activated in the next time-slot?  Every algorithm in the paper
// and both baselines implement this interface, so the MCS greedy driver
// (sched/mcs.h) and the figure harnesses treat them uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"

namespace rfid::sched {

/// Outcome of one one-shot scheduling decision.
struct OneShotResult {
  /// The chosen scheduling set (reader indices, ascending).  For all
  /// algorithms except raw Colorwave classes this is feasible by
  /// construction; the MCS driver re-checks with the Definition 1 referee
  /// regardless.
  std::vector<int> readers;
  /// w(readers) as evaluated by the System at decision time.
  int weight = 0;
};

/// Interface shared by Algorithm 1 (PTAS), Algorithm 2 (growth-bounded),
/// Algorithm 3 (distributed), Colorwave, GHC, and the exact solver.
///
/// schedule() is non-const because several algorithms carry internal state
/// across slots (Colorwave keeps its coloring; randomized algorithms keep
/// their RNG stream).  Implementations must not mutate the System.
class OneShotScheduler {
 public:
  virtual ~OneShotScheduler() = default;

  /// Human-readable name used in tables and figure legends.
  virtual std::string name() const = 0;

  /// Picks the scheduling set for the next slot given the current unread
  /// set of `sys`.
  virtual OneShotResult schedule(const core::System& sys) = 0;
};

}  // namespace rfid::sched
