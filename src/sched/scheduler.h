// scheduler.h — the one-shot scheduler interface (Definition 6).
//
// A OneShotScheduler answers one question: given the current system state
// (deployment + which tags are still unread), which feasible scheduling set
// should be activated in the next time-slot?  Every algorithm in the paper
// and both baselines implement this interface, so the MCS greedy driver
// (sched/mcs.h) and the figure harnesses treat them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/budget.h"
#include "core/system.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfid::fault {
class ChannelModel;
}

namespace rfid::sched {

/// Outcome of one one-shot scheduling decision.
struct OneShotResult {
  /// The chosen scheduling set (reader indices, ascending).  For all
  /// algorithms except raw Colorwave classes this is feasible by
  /// construction; the MCS driver re-checks with the Definition 1 referee
  /// regardless.
  std::vector<int> readers;
  /// w(readers) as evaluated by the System at decision time.
  int weight = 0;
};

/// Interface shared by Algorithm 1 (PTAS), Algorithm 2 (growth-bounded),
/// Algorithm 3 (distributed), Colorwave, GHC, and the exact solver.
///
/// schedule() is non-const because several algorithms carry internal state
/// across slots (Colorwave keeps its coloring; randomized algorithms keep
/// their RNG stream).  Implementations must not mutate the System.
class OneShotScheduler {
 public:
  virtual ~OneShotScheduler() = default;

  /// Human-readable name used in tables and figure legends.
  virtual std::string name() const = 0;

  /// Picks the scheduling set for the next slot given the current unread
  /// set of `sys`.
  virtual OneShotResult schedule(const core::System& sys) = 0;

  /// Observability: attach a metrics registry (nullptr detaches).  Every
  /// implementation then reports the shared counters
  /// `sched.schedule_calls`, `sched.weight_evals` (exact w(X)/marginal
  /// evaluations, incl. branch & bound nodes) and `sched.candidates`
  /// (algorithm-specific search breadth: DP states, coordinator picks,
  /// color classes, …).  Attach one registry per scheduler to keep
  /// algorithms separable (the bench harness does exactly that).
  void attachMetrics(obs::MetricsRegistry* m) { metrics_ = m; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Attaches a trace sink (nullptr detaches).  Only schedulers with
  /// internal structure worth tracing use it — the distributed algorithms
  /// forward it to their network simulator, which then emits per-round
  /// kRound events.
  void attachTrace(obs::TraceSink* t) { trace_ = t; }
  obs::TraceSink* trace() const { return trace_; }

  /// Attaches a deterministic cost ledger (nullptr detaches).  Every
  /// implementation then charges per-phase CostBills — alg2 its cache
  /// sync / selection / B&B phases, alg1 its shift enumeration, the
  /// distributed algorithms their network traffic — always from the thread
  /// that called schedule(), in program order (obs/cost.h).  The ledger is
  /// typically shared with the MCS driver, which additionally slices the
  /// same charges per slot.
  void attachCost(obs::CostLedger* c) { cost_ = c; }
  obs::CostLedger* cost() const { return cost_; }

  /// Attaches a fault channel model (nullptr detaches).  Only the
  /// distributed algorithms override this — they forward it to their
  /// network simulator, making the control plane lossy and crash-prone.
  /// Centralized schedulers exchange no messages, so the default ignores
  /// it (their faults act only at the MCS referee, sched/mcs.h).
  virtual void attachChannel(fault::ChannelModel*) {}

  /// Attaches a cooperative cancellation token (nullptr detaches).  Every
  /// implementation polls it at its own checkpoints — per coordinator pick,
  /// per shift, per protocol round, and every few thousand branch & bound
  /// nodes — and on cancellation returns the best valid (feasible) set it
  /// has so far.  The MCS driver discards a proposal computed under a fired
  /// token, so cancellation never perturbs committed results
  /// (docs/recovery.md, the anytime contract).
  void attachCancel(const ckpt::CancelToken* c) { cancel_ = c; }
  const ckpt::CancelToken* cancelToken() const { return cancel_; }

  /// A fingerprint of the scheduler's evolving cross-slot state — its RNG
  /// cursor, in journal terms (ckpt/journal.h SlotEntry::fp).  Stateless
  /// schedulers return 0; Colorwave hashes its coloring + slot cursor and
  /// Algorithm 3 reports its per-slot salt.  Recorded after every committed
  /// slot and re-verified on journal replay, so a resume whose scheduler
  /// state diverged from the original run fails closed instead of silently
  /// continuing a different trajectory.
  virtual std::uint64_t stateFingerprint() const { return 0; }

 protected:
  /// True once the attached token (if any) has fired; implementations use
  /// this as their cancellation checkpoint predicate.
  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  /// Bumps the shared per-schedule counters; no-op when detached.
  void recordScheduleMetrics(std::int64_t weight_evals,
                             std::int64_t candidates) const;

  /// Charges `bill` to `phase` on the attached ledger; no-op when detached.
  void chargeCost(std::string_view phase, const obs::CostBill& bill) const {
    if (cost_ != nullptr) cost_->charge(phase, bill);
  }

  /// True when some observer wants deterministic work counts — the gate the
  /// reference paths use around their otherwise-free tallies.
  bool countingWork() const { return metrics_ != nullptr || cost_ != nullptr; }

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::CostLedger* cost_ = nullptr;
  const ckpt::CancelToken* cancel_ = nullptr;
};

}  // namespace rfid::sched
