#include "sched/pruning.h"

#include <algorithm>
#include <utility>

#include "core/weight.h"

namespace rfid::sched {

PruningWrapper::PruningWrapper(std::unique_ptr<OneShotScheduler> inner)
    : inner_(std::move(inner)) {}

OneShotResult PruningWrapper::schedule(const core::System& sys) {
  const OneShotResult proposal = inner_->schedule(sys);

  core::WeightEvaluator eval(sys);
  std::vector<char> blocked(static_cast<std::size_t>(sys.numReaders()), 0);
  std::vector<int> kept;
  while (true) {
    int best = -1;
    int best_delta = 0;
    for (const int v : proposal.readers) {
      if (blocked[static_cast<std::size_t>(v)] != 0) continue;
      const int d = eval.peekDelta(v);
      if (d > best_delta) {
        best_delta = d;
        best = v;
      }
    }
    if (best < 0) break;
    eval.push(best);
    kept.push_back(best);
    blocked[static_cast<std::size_t>(best)] = 1;
    // Keep the re-selected subset feasible even if the proposal wasn't:
    // a pruned overlay cannot fix an interfering proposal, but it must not
    // make RTc worse by keeping both sides of a conflict.
    for (const int v : proposal.readers) {
      if (blocked[static_cast<std::size_t>(v)] == 0 && !sys.independent(best, v)) {
        blocked[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
  std::sort(kept.begin(), kept.end());
  return {kept, eval.weight()};
}

}  // namespace rfid::sched
