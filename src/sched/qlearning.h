// qlearning.h — HiQ-style Q-learning slot allocation (related work, [14]).
//
// Ho, Engels and Sarma's HiQ solves the reader collision problem with a
// hierarchical Q-learning process that "yields an optimized resource
// (channel and time slot) allocation scheme after a training period"; the
// paper cites it as a baseline-family that "does not provide any
// performance guarantee" (§VII).  This is the flattened, single-tier form:
//
//   * each reader keeps Q[s] over the S slots of a TDMA frame;
//   * per training episode every reader ε-greedily picks a slot, the frame
//     is simulated, and each reader's reward is the number of tags it
//     would exclusively serve in its slot (zero when it is an RTc victim);
//   * Q-values update with learning rate α, ε decays geometrically;
//   * after training, readers commit to argmax Q and the scheduler rotates
//     through the frame's slots.
//
// Like Colorwave it is weight-blind at schedule time and learns only from
// collision feedback — which is exactly why the paper's algorithms beat it.
// Periodic retraining keeps it live inside the MCS loop (rewards follow the
// shrinking unread population, mirroring HiQ's online adaptation).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduler.h"
#include "workload/rng.h"

namespace rfid::sched {

struct QLearningOptions {
  /// Slots per TDMA frame (the resource being allocated).
  int frame_slots = 8;
  /// Training episodes before the first frame (and after each retrain).
  int episodes = 300;
  /// Learning rate α ∈ (0, 1].
  double alpha = 0.2;
  /// Initial exploration rate; decays by `epsilon_decay` per episode.
  double epsilon = 0.5;
  double epsilon_decay = 0.995;
  /// Retrain after this many served slots (0 = never retrain).
  int retrain_every = 16;
};

class QLearningScheduler final : public OneShotScheduler {
 public:
  explicit QLearningScheduler(std::uint64_t seed, QLearningOptions opt = {});

  std::string name() const override { return "HiQ"; }
  OneShotResult schedule(const core::System& sys) override;

  /// Current slot assignment (argmax Q per reader); empty before training.
  std::vector<int> assignment() const;

  struct Stats {
    int trainings = 0;
    std::int64_t episodes_run = 0;
    double last_mean_reward = 0.0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void train(const core::System& sys);

  QLearningOptions opt_;
  workload::Rng rng_;
  std::vector<std::vector<double>> q_;  // [reader][slot]
  int slot_counter_ = 0;
  int slots_since_training_ = -1;  // -1 = never trained
  Stats stats_;
};

}  // namespace rfid::sched
