// streaming.h — the churn-hardened streaming MCS driver (docs/streaming.md).
//
// runCoveringSchedule() serves a *fixed* tag population until it is
// covered.  runStreamingMcs() serves a *churning* one: a workload::ChurnTrace
// schedules tag arrivals, departures, and moves against the stream clock,
// the driver applies each batch through core::System's incremental mutation
// API (addTag / removeTag / moveTag), and the scheduler replans every busy
// slot against whatever population is currently in the field.  The inner
// slot body is byte-for-byte the MCS driver's — same referee, same fault
// semantics, same journal records, same cost bills — so a stream fed the
// *empty* trace commits exactly the slots, tags, and cost ledger of
// runCoveringSchedule (the equivalence the metamorphic tests pin).
//
// Overload control: a real portal cannot let backlog grow without bound
// when arrivals outpace service.  Two knobs, both off by default and both
// accounted as graceful degradation rather than silent loss:
//   * deadline aging  — a tag unread for more than `shed_after_slots`
//     stream slots is shed (its inventory window passed);
//   * backlog bound   — when unread coverable tags exceed `max_backlog`,
//     the excess is shed per service::ShedPolicy (kRejectNewest drops the
//     most recent arrivals; kRejectLargest drops the tags with the most
//     covering readers — the RRc-expensive ones that cost the most slots
//     to serve).
// Shed tags are marked read (they leave the workload) and counted in
// StreamingResult::shed / shed_aged and the stream.* metrics.
//
// Self-healing validation: an attached check::IncrementalIndexOracle is
// consulted every loop iteration (it gates itself on structural-epoch
// cadence); a divergence heals in place in production mode, or stops the
// run with McsStop::kCheckFailed when `fail_on_divergence` is armed
// (the CLI's --check, exit 5).
//
// Checkpointing: runStreamingCheckpointed() mirrors ckpt::runMcsCheckpointed
// with the churn trace folded into the journal's deployment identity —
// a journal recorded under one trace can never silently resume under
// another.  A resumed stream replays the committed prefix through this
// exact loop and is bit-identical to an uninterrupted run.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/mcs_ckpt.h"
#include "core/system.h"
#include "sched/mcs.h"
#include "sched/scheduler.h"
#include "service/queue.h"
#include "workload/churn.h"

namespace rfid::check {
class IncrementalIndexOracle;
}

namespace rfid::sched {

struct StreamingOptions {
  /// Caps, observability, faults, budget, journaling: the exact McsOptions
  /// contract (sched/mcs.h documents each field).  max_slots bounds *busy*
  /// (committed) slots; idle fast-forwarded slots are free.
  int max_slots = 100000;
  int max_stall = 500;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
  obs::CostLedger* cost = nullptr;
  const fault::FaultPlan* faults = nullptr;
  fault::ChannelModel* channel = nullptr;
  int reprobe_interval = 8;
  ckpt::RunBudget* budget = nullptr;
  std::atomic<std::int64_t>* progress = nullptr;
  ckpt::JournalWriter* journal = nullptr;
  const ckpt::JournalData* resume = nullptr;
  /// Self-healing index validation (nullptr = trust the incremental path).
  check::IncrementalIndexOracle* oracle = nullptr;
  /// Stop with McsStop::kCheckFailed on *any* oracle divergence, healed or
  /// not — the --check contract (a healed index is still a detected bug).
  bool fail_on_divergence = false;
  /// Overload control (see the header comment; 0 disables each knob).
  int max_backlog = 0;
  service::ShedPolicy shed_policy = service::ShedPolicy::kRejectNewest;
  int shed_after_slots = 0;
  /// Wall-clock seconds one stream slot represents — only converts
  /// tags_read into the reported tags_per_sec, never drives control flow.
  double slot_seconds = 0.01;
  /// Commit hook (optional) — the McsOptions::on_commit contract: called
  /// once per committed busy slot after markRead, fires during journal
  /// replay too, observes only.  The slot index counts busy slots (matches
  /// StreamingResult::slots), not the stream clock.
  std::function<void(int slot, std::span<const int> active,
                     std::span<const int> served)>
      on_commit;
};

struct StreamingResult {
  // ---- schedule (MCS-compatible core) ----
  int slots = 0;        // busy slots committed (scheduler ran)
  int idle_slots = 0;   // empty-backlog slots fast-forwarded
  int stream_slots = 0; // total stream clock consumed (busy + idle)
  int tags_read = 0;
  int uncoverable = 0;  // initial + arrived tags no reader covers
  std::vector<SlotRecord> schedule;
  McsDegradation degradation;
  bool interrupted = false;
  McsStop stop = McsStop::kNone;
  int replayed_slots = 0;
  // ---- churn accounting ----
  int arrived = 0;
  int departed = 0;
  int moved = 0;
  /// Trace events dropped because their target was out of range or already
  /// departed (a corrupt or mismatched trace; each is counted, not fatal).
  int skipped_events = 0;
  // ---- overload control ----
  int shed = 0;          // backlog-bound sheds
  int shed_aged = 0;     // deadline-aged sheds
  int backlog_peak = 0;  // max unread coverable tags after shedding
  // ---- service quality ----
  double latency_mean = 0.0;  // slots from arrival to read (served tags)
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double tags_per_sec = 0.0;  // tags_read / (stream_slots * slot_seconds)
  /// Every coverable tag that entered the field was served or shed by the
  /// end (the stream's notion of completion).
  bool drained = false;
  // ---- oracle summary (zeros when no oracle attached) ----
  std::int64_t index_checks = 0;
  std::int64_t index_divergences = 0;
  std::int64_t index_heals = 0;
};

/// Runs the streaming loop, mutating `sys` structurally and in read-state.
/// `trace` events are applied at their slot in trace order; events at slots
/// the stream has already passed apply immediately (counted, not skipped).
StreamingResult runStreamingMcs(core::System& sys, OneShotScheduler& scheduler,
                                const workload::ChurnTrace& trace,
                                const StreamingOptions& opt = {});

struct StreamingCheckpointedRun {
  StreamingResult result;
  bool resumed = false;
  int replayed_slots = 0;
  bool ok = true;
  std::string error;
};

/// ckpt::runMcsCheckpointed for streams: same create / validate / resume
/// policy, with churnTraceHash folded into the header's deployment
/// identity.  With an empty `setup.path` this is exactly runStreamingMcs.
StreamingCheckpointedRun runStreamingCheckpointed(
    core::System& sys, OneShotScheduler& scheduler,
    const workload::ChurnTrace& trace, StreamingOptions opt,
    const ckpt::CheckpointSetup& setup);

}  // namespace rfid::sched
