// hill_climbing.h — Greedy Hill-Climbing baseline (GHC, paper §VI).
//
// "At each step, we select a reader to add to the current active reader
//  set, in order to maximize the incremental weight together with other
//  active readers at this time-slot.  Then we keep adding the reader to the
//  active set one by one recursively until the weight starts to decrease
//  (the incremental weight becomes negative) due to various collisions."
//
// Additions are restricted to readers independent of the current set: an
// interfering addition creates RTc and can only lose weight, so GHC would
// never take it anyway; excluding it keeps the produced set feasible.
//
// By default the per-step argmax runs through core::LazyGreedyQueue seeded
// from a cross-slot core::StandaloneWeightCache — same climb, same
// tie-breaks, without the O(n·coverage) rescan every step
// (docs/performance.md).  Construct with `lazy_selection = false` for the
// original scan, kept as the equivalence-test oracle.
#pragma once

#include "core/weight.h"
#include "sched/scheduler.h"

namespace rfid::sched {

class HillClimbingScheduler final : public OneShotScheduler {
 public:
  explicit HillClimbingScheduler(bool lazy_selection = true)
      : lazy_(lazy_selection) {}

  std::string name() const override { return "GHC"; }
  OneShotResult schedule(const core::System& sys) override;

 private:
  OneShotResult scheduleReference(const core::System& sys);

  bool lazy_;
  core::StandaloneWeightCache standalone_;
  core::LazyGreedyQueue queue_;
  std::vector<int> all_;  // candidate list 0..n-1, reused across slots
};

}  // namespace rfid::sched
