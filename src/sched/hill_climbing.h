// hill_climbing.h — Greedy Hill-Climbing baseline (GHC, paper §VI).
//
// "At each step, we select a reader to add to the current active reader
//  set, in order to maximize the incremental weight together with other
//  active readers at this time-slot.  Then we keep adding the reader to the
//  active set one by one recursively until the weight starts to decrease
//  (the incremental weight becomes negative) due to various collisions."
//
// Additions are restricted to readers independent of the current set: an
// interfering addition creates RTc and can only lose weight, so GHC would
// never take it anyway; excluding it keeps the produced set feasible.
#pragma once

#include "sched/scheduler.h"

namespace rfid::sched {

class HillClimbingScheduler final : public OneShotScheduler {
 public:
  std::string name() const override { return "GHC"; }
  OneShotResult schedule(const core::System& sys) override;
};

}  // namespace rfid::sched
