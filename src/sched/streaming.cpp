#include "sched/streaming.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "check/index_oracle.h"
#include "ckpt/journal.h"
#include "fault/channel_model.h"
#include "fault/fault_plan.h"
#include "obs/timer.h"

namespace rfid::sched {

namespace {

/// BudgetStop -> McsStop (kNone only when the budget did not fire).
McsStop budgetStop(ckpt::BudgetStop bs) {
  switch (bs) {
    case ckpt::BudgetStop::kSlotCap: return McsStop::kSlotCap;
    case ckpt::BudgetStop::kDeadline: return McsStop::kDeadline;
    case ckpt::BudgetStop::kCancelled: return McsStop::kCancelled;
    case ckpt::BudgetStop::kNone: break;
  }
  return McsStop::kCancelled;
}

/// Exact order statistic of a sorted sample: the floor(p·(n−1))-th value.
/// Deterministic and scale-free — the bench gate compares these across
/// machines, so no interpolation.
double percentile(const std::vector<int>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto i = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return static_cast<double>(sorted[i]);
}

}  // namespace

StreamingResult runStreamingMcs(core::System& sys, OneShotScheduler& scheduler,
                                const workload::ChurnTrace& trace,
                                const StreamingOptions& opt) {
  StreamingResult res;
  res.uncoverable = sys.unreadCount() - sys.unreadCoverableCount();

  obs::ScopedTimer run_span(opt.trace != nullptr ? opt.metrics : nullptr,
                            "mcs.run_us", opt.trace, "mcs.run");

  const fault::FaultPlan* plan = opt.faults;
  const bool faulty = plan != nullptr && !plan->empty();

  // mcs.* counter handles, resolved exactly like the static driver's: the
  // streaming slot body *is* an MCS slot, and an empty trace must export
  // the identical counters.
  obs::Counter* c_slots = nullptr;
  obs::Counter* c_tags = nullptr;
  obs::Counter* c_stalls = nullptr;
  obs::Histogram* h_proposed = nullptr;
  obs::Histogram* h_tags = nullptr;
  if (opt.metrics != nullptr) {
    c_slots = &opt.metrics->counter("mcs.slots");
    c_tags = &opt.metrics->counter("mcs.tags_read");
    c_stalls = &opt.metrics->counter("mcs.stall_slots");
    h_proposed = &opt.metrics->histogram("mcs.slot_proposed_readers");
    h_tags = &opt.metrics->histogram("mcs.slot_tags_read");
  }
  obs::Counter* c_crashed = nullptr;
  obs::Counter* c_replanned = nullptr;
  obs::Counter* c_missed = nullptr;
  obs::Counter* c_faulty_slots = nullptr;
  obs::Counter* c_slots_lost = nullptr;
  if (opt.metrics != nullptr && faulty) {
    c_crashed = &opt.metrics->counter("fault.mcs.crashed_activations");
    c_replanned = &opt.metrics->counter("fault.mcs.replanned_activations");
    c_missed = &opt.metrics->counter("fault.mcs.tags_missed");
    c_faulty_slots = &opt.metrics->counter("fault.mcs.faulty_slots");
    c_slots_lost = &opt.metrics->counter("fault.mcs.slots_lost");
  }
  const bool checkpointing = opt.journal != nullptr || opt.resume != nullptr;
  obs::Counter* c_ckpt_slots = nullptr;
  obs::Counter* c_ckpt_snaps = nullptr;
  if (opt.metrics != nullptr && checkpointing) {
    c_ckpt_slots = &opt.metrics->counter("ckpt.slots_committed");
    c_ckpt_snaps = &opt.metrics->counter("ckpt.snapshots");
  }
  // stream.* counters are created lazily on first bump, so a stream fed the
  // empty trace exports the exact metrics JSON of runCoveringSchedule.
  obs::Counter* c_arrived = nullptr;
  obs::Counter* c_departed = nullptr;
  obs::Counter* c_moved = nullptr;
  obs::Counter* c_shed = nullptr;
  obs::Counter* c_shed_aged = nullptr;
  const auto bump = [&](obs::Counter*& c, const char* name, std::int64_t by) {
    if (opt.metrics == nullptr || by == 0) return;
    if (c == nullptr) c = &opt.metrics->counter(name);
    c->add(by);
  };

  std::vector<int> trusted_from;
  if (faulty && opt.reprobe_interval > 0) {
    trusted_from.assign(static_cast<std::size_t>(sys.numReaders()), 0);
  }

  // Arrival slot per tag index: latency-to-first-read and the aging shed
  // both measure from here.  Tags present at stream start arrived at 0.
  std::vector<int> arrival_slot(static_cast<std::size_t>(sys.numTags()), 0);
  std::vector<int> latencies;

  const std::vector<workload::ChurnEvent>& events = trace.events;
  const std::size_t E = events.size();
  std::size_t ev = 0;
  int now = 0;    // the stream clock (slot index the fault plan speaks in)
  int stall = 0;

  std::vector<int> shed_pick;  // scratch for the overflow shed
  while (true) {
    // ---- churn: apply every event due at or before the current clock ----
    const std::uint64_t dirty_before = sys.dirtyLogEnd();
    int applied = 0;
    while (ev < E && events[ev].slot <= now) {
      const workload::ChurnEvent& e = events[ev];
      ++ev;
      switch (e.kind) {
        case workload::ChurnKind::kArrive: {
          core::Tag t;
          t.pos = e.pos;
          t.epc = e.epc;
          const int idx = sys.addTag(t);
          arrival_slot.push_back(now);
          ++res.arrived;
          if (sys.coverers(idx).empty()) ++res.uncoverable;
          ++applied;
          break;
        }
        case workload::ChurnKind::kDepart: {
          if (e.tag < 0 || e.tag >= sys.numTags() || sys.departed(e.tag)) {
            ++res.skipped_events;
            break;
          }
          sys.removeTag(e.tag);
          ++res.departed;
          ++applied;
          break;
        }
        case workload::ChurnKind::kMove: {
          if (e.tag < 0 || e.tag >= sys.numTags() || sys.departed(e.tag)) {
            ++res.skipped_events;
            break;
          }
          sys.moveTag(e.tag, e.pos);
          ++res.moved;
          ++applied;
          break;
        }
      }
    }
    if (applied > 0 && opt.cost != nullptr) {
      // The churn's deterministic work: every CSR row the splices touched
      // (exactly the dirty-log rows this batch appended).
      obs::CostBill churn_bill;
      churn_bill.csr_rows =
          static_cast<std::int64_t>(sys.dirtyLogEnd() - dirty_before);
      opt.cost->charge("stream.churn", churn_bill);
    }

    // ---- self-healing index validation (epoch-cadence gated) ----
    if (opt.oracle != nullptr) {
      const check::IndexVerdict v = opt.oracle->checkSlot(sys, now);
      if (v == check::IndexVerdict::kCorrupt ||
          (opt.fail_on_divergence && v == check::IndexVerdict::kHealed)) {
        res.stop = McsStop::kCheckFailed;
        break;
      }
    }

    // ---- overload control ----
    if (opt.shed_after_slots > 0) {
      int aged = 0;
      for (int t = 0; t < sys.numTags(); ++t) {
        if (sys.isRead(t) || sys.coverers(t).empty()) continue;
        if (now - arrival_slot[static_cast<std::size_t>(t)] >
            opt.shed_after_slots) {
          sys.markRead(t);
          ++aged;
        }
      }
      res.shed_aged += aged;
      bump(c_shed_aged, "stream.shed_aged", aged);
    }
    int backlog = sys.unreadCoverableCount();
    if (opt.max_backlog > 0 && backlog > opt.max_backlog) {
      shed_pick.clear();
      for (int t = 0; t < sys.numTags(); ++t) {
        if (!sys.isRead(t) && !sys.coverers(t).empty()) shed_pick.push_back(t);
      }
      // Shed-first order per policy; ties broken by higher index so the
      // outcome is deterministic for any stable population.
      if (opt.shed_policy == service::ShedPolicy::kRejectNewest) {
        std::sort(shed_pick.begin(), shed_pick.end(), [&](int a, int b) {
          const int aa = arrival_slot[static_cast<std::size_t>(a)];
          const int ab = arrival_slot[static_cast<std::size_t>(b)];
          return aa != ab ? aa > ab : a > b;
        });
      } else {
        std::sort(shed_pick.begin(), shed_pick.end(), [&](int a, int b) {
          const auto ca = sys.coverers(a).size();
          const auto cb = sys.coverers(b).size();
          return ca != cb ? ca > cb : a > b;
        });
      }
      const int excess = backlog - opt.max_backlog;
      for (int i = 0; i < excess; ++i) {
        sys.markRead(shed_pick[static_cast<std::size_t>(i)]);
      }
      res.shed += excess;
      bump(c_shed, "stream.shed", excess);
      backlog -= excess;
    }
    res.backlog_peak = std::max(res.backlog_peak, backlog);

    // ---- idle fast-forward / termination ----
    if (backlog == 0) {
      if (ev >= E) break;  // drained and no churn ahead
      // The apply loop above consumed everything due, so the next event is
      // strictly in the future: jump the clock straight to it.
      res.idle_slots += events[ev].slot - now;
      now = events[ev].slot;
      continue;
    }
    if (res.slots >= opt.max_slots) break;

    // ---- one MCS slot, byte-for-byte the static driver's body ----
    if (opt.budget != nullptr) {
      const ckpt::BudgetStop bs = opt.budget->charge(res.slots);
      if (bs != ckpt::BudgetStop::kNone) {
        res.interrupted = true;
        res.stop = budgetStop(bs);
        break;
      }
    }
    if (opt.progress != nullptr) {
      opt.progress->fetch_add(1, std::memory_order_relaxed);
    }
    const bool replaying =
        opt.resume != nullptr &&
        res.slots < static_cast<int>(opt.resume->slots.size());
    if (faulty && plan->hasPermanentDeaths() && ev >= E) {
      // Orphan-aware termination only once the trace is exhausted: while
      // churn is still ahead, "every unread tag is orphaned" is a
      // statement about a population that is about to change.
      const int orphans = countMcsOrphans(sys, *plan, now);
      if (orphans >= sys.unreadCoverableCount()) {
        res.degradation.tags_orphaned = orphans;
        break;
      }
    }
    if (opt.channel != nullptr) opt.channel->setSlot(now);

    obs::CostBill slot_base;
    if (opt.cost != nullptr) slot_base = opt.cost->total();

    obs::ScopedTimer span(opt.trace != nullptr ? opt.metrics : nullptr,
                          "mcs.slot_us", opt.trace, "mcs.slot",
                          obs::EventKind::kSlot);
    const OneShotResult one = scheduler.schedule(sys);
    if (opt.budget != nullptr && opt.budget->token().cancelled()) {
      res.interrupted = true;
      res.stop = budgetStop(opt.budget->charge(res.slots));
      break;
    }

    std::vector<int> served;
    int crashed_here = 0;
    int replanned_here = 0;
    int missed_here = 0;
    int ideal_here = 0;
    bool slot_faulty = false;
    bool slot_lost = false;
    std::vector<int> live;
    std::vector<int> jamming;
    if (!faulty) {
      served = sys.wellCoveredTags(one.readers);
    } else {
      live.reserve(one.readers.size());
      for (const int v : one.readers) {
        if (!trusted_from.empty() &&
            trusted_from[static_cast<std::size_t>(v)] > now) {
          ++replanned_here;
          continue;
        }
        if (plan->crashed(v, now)) {
          ++crashed_here;
          if (!trusted_from.empty()) {
            trusted_from[static_cast<std::size_t>(v)] =
                now + 1 + opt.reprobe_interval;
          }
          continue;
        }
        live.push_back(v);
      }
      for (const int v : plan->loudAt(now)) {
        if (v >= 0 && v < sys.numReaders()) jamming.push_back(v);
      }
      served = sys.wellCoveredTags(live, jamming);
      if (plan->hasMissFaults()) {
        std::vector<int> kept;
        kept.reserve(served.size());
        for (const int t : served) {
          if (plan->drawMiss(now, t)) {
            ++missed_here;
          } else {
            kept.push_back(t);
          }
        }
        served = std::move(kept);
      }
      ideal_here = static_cast<int>(sys.wellCoveredTags(one.readers).size());
      res.degradation.ideal_tags_read += ideal_here;
      res.degradation.crashed_activations += crashed_here;
      res.degradation.replanned_activations += replanned_here;
      res.degradation.tags_missed += missed_here;
      slot_faulty =
          crashed_here + replanned_here + missed_here > 0 ||
          (!jamming.empty() && static_cast<int>(served.size()) != ideal_here);
      slot_lost = slot_faulty && served.empty() && ideal_here > 0;
      res.degradation.faulty_slots += slot_faulty ? 1 : 0;
      res.degradation.slots_lost += slot_lost ? 1 : 0;
      if (c_crashed != nullptr) {
        c_crashed->add(crashed_here);
        c_replanned->add(replanned_here);
        c_missed->add(missed_here);
        if (slot_faulty) c_faulty_slots->add(1);
        if (slot_lost) c_slots_lost->add(1);
      }
      if (opt.trace != nullptr && slot_faulty) {
        opt.trace->instant(
            obs::EventKind::kFault, "fault.mcs.slot",
            {{"slot", static_cast<double>(now)},
             {"crashed", static_cast<double>(crashed_here)},
             {"replanned", static_cast<double>(replanned_here)},
             {"missed", static_cast<double>(missed_here)},
             {"served", static_cast<double>(served.size())},
             {"ideal", static_cast<double>(ideal_here)}});
      }
    }

    if (opt.cost != nullptr) {
      obs::CostBill ref;
      if (!faulty) {
        ref.weight_evals = 1;
        ref.csr_rows = static_cast<std::int64_t>(one.readers.size());
      } else {
        ref.weight_evals = 2;
        ref.csr_rows = static_cast<std::int64_t>(
            live.size() + jamming.size() + one.readers.size());
      }
      opt.cost->charge("mcs.referee", ref);
    }

    if (checkpointing) {
      ckpt::SlotEntry entry;
      entry.slot = res.slots;  // dense commit index (idle slots are free)
      entry.active = one.readers;
      entry.served = served;
      entry.crashed = crashed_here;
      entry.replanned = replanned_here;
      entry.missed = missed_here;
      entry.ideal = ideal_here;
      entry.faulty = slot_faulty;
      entry.lost = slot_lost;
      entry.epoch = faulty ? plan->epochAt(now) : 0;
      entry.fp = scheduler.stateFingerprint();
      if (replaying) {
        if (!(entry ==
              opt.resume->slots[static_cast<std::size_t>(res.slots)])) {
          res.stop = McsStop::kReplayMismatch;
          break;
        }
      } else if (opt.journal != nullptr) {
        if (!opt.journal->appendSlot(entry)) {
          res.stop = McsStop::kJournalError;
          break;
        }
      }
    }
    sys.markRead(served);
    if (opt.on_commit) opt.on_commit(res.slots, one.readers, served);
    for (const int t : served) {
      latencies.push_back(now - arrival_slot[static_cast<std::size_t>(t)]);
    }

    SlotRecord rec;
    rec.active = one.readers;
    rec.tags_read = static_cast<int>(served.size());
    res.schedule.push_back(std::move(rec));
    ++res.slots;
    res.tags_read += static_cast<int>(served.size());

    if (opt.cost != nullptr) {
      obs::CostBill slot_bill = opt.cost->total();
      slot_bill.subtract(slot_base);
      opt.cost->commitSlot(slot_bill);
    }

    if (served.empty()) {
      ++stall;
    } else {
      stall = 0;
    }

    if (c_slots != nullptr) {
      c_slots->add(1);
      c_tags->add(static_cast<std::int64_t>(served.size()));
      if (served.empty()) c_stalls->add(1);
      h_proposed->record(static_cast<double>(one.readers.size()));
      h_tags->record(static_cast<double>(served.size()));
    }
    if (opt.trace != nullptr) {
      span.arg("slot", static_cast<double>(res.slots));
      span.arg("proposed", static_cast<double>(one.readers.size()));
      span.arg("claimed_weight", static_cast<double>(one.weight));
      span.arg("delivered", static_cast<double>(served.size()));
      span.arg("stall", static_cast<double>(stall));
    }

    if (checkpointing) {
      if (c_ckpt_slots != nullptr) c_ckpt_slots->add(1);
      if (replaying) {
        ++res.replayed_slots;
        if (opt.resume->snapshot.has_value() &&
            opt.resume->snapshot->slot == res.slots) {
          const ckpt::Snapshot& snap = *opt.resume->snapshot;
          bool match = static_cast<int>(snap.read.size()) == sys.numTags();
          for (int t = 0; match && t < sys.numTags(); ++t) {
            match = (snap.read[static_cast<std::size_t>(t)] != 0) ==
                    sys.isRead(t);
          }
          if (!match) {
            res.stop = McsStop::kReplayMismatch;
            break;
          }
        }
      }
      if (opt.journal != nullptr && opt.journal->snapshotDue(res.slots)) {
        if (c_ckpt_snaps != nullptr) c_ckpt_snaps->add(1);
        if (!replaying) {
          ckpt::Snapshot snap;
          snap.slot = res.slots;
          snap.read.resize(static_cast<std::size_t>(sys.numTags()), 0);
          for (int t = 0; t < sys.numTags(); ++t) {
            snap.read[static_cast<std::size_t>(t)] = sys.isRead(t) ? 1 : 0;
          }
          if (!opt.journal->writeSnapshot(snap)) {
            res.stop = McsStop::kJournalError;
            break;
          }
          if (opt.trace != nullptr) {
            opt.trace->instant(obs::EventKind::kCkpt, "ckpt.snapshot",
                               {{"slot", static_cast<double>(res.slots)}});
          }
        }
      }
    }

    ++now;  // the slot consumed stream time
    if (served.empty() && stall >= opt.max_stall) break;
  }

  if (res.stop == McsStop::kNone && !res.interrupted &&
      opt.resume != nullptr &&
      res.replayed_slots < static_cast<int>(opt.resume->slots.size())) {
    res.stop = McsStop::kReplayMismatch;
  }
  res.stream_slots = now;
  res.drained = ev >= E && sys.unreadCoverableCount() == 0;
  if (faulty && plan->hasPermanentDeaths() &&
      res.degradation.tags_orphaned == 0) {
    res.degradation.tags_orphaned =
        countMcsOrphans(sys, *plan, now > 0 ? now - 1 : 0);
  }
  bump(c_arrived, "stream.arrived", res.arrived);
  bump(c_departed, "stream.departed", res.departed);
  bump(c_moved, "stream.moved", res.moved);

  // Service quality: exact order statistics over the recorded latencies.
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const int l : latencies) sum += l;
    res.latency_mean = sum / static_cast<double>(latencies.size());
    res.latency_p50 = percentile(latencies, 0.50);
    res.latency_p99 = percentile(latencies, 0.99);
  }
  if (res.stream_slots > 0 && opt.slot_seconds > 0.0) {
    res.tags_per_sec = static_cast<double>(res.tags_read) /
                       (static_cast<double>(res.stream_slots) * opt.slot_seconds);
  }
  if (opt.oracle != nullptr) {
    res.index_checks = opt.oracle->checks();
    res.index_divergences = opt.oracle->divergences();
    res.index_heals = opt.oracle->heals();
  }
  // The streaming scorecard rides on gauges (deterministic, so the bench
  // gate can pin them) — only when the run actually streamed, keeping the
  // empty-trace metrics JSON identical to the static driver's.
  if (opt.metrics != nullptr &&
      (!trace.events.empty() || res.shed + res.shed_aged > 0)) {
    opt.metrics->gauge("stream.slots").set(static_cast<double>(res.slots));
    opt.metrics->gauge("stream.idle_slots")
        .set(static_cast<double>(res.idle_slots));
    opt.metrics->gauge("stream.tags_read")
        .set(static_cast<double>(res.tags_read));
    opt.metrics->gauge("stream.backlog_peak")
        .set(static_cast<double>(res.backlog_peak));
    opt.metrics->gauge("stream.latency_p50").set(res.latency_p50);
    opt.metrics->gauge("stream.latency_p99").set(res.latency_p99);
    opt.metrics->gauge("stream.tags_per_sec").set(res.tags_per_sec);
  }
  if (opt.trace != nullptr) {
    opt.trace->instant(obs::EventKind::kSpan, "mcs.done",
                       {{"slots", static_cast<double>(res.slots)},
                        {"tags_read", static_cast<double>(res.tags_read)},
                        {"completed", res.drained ? 1.0 : 0.0}});
  }
  return res;
}

namespace {

StreamingCheckpointedRun streamFailClosed(std::string error) {
  StreamingCheckpointedRun run;
  run.ok = false;
  run.error = std::move(error);
  return run;
}

/// Names the first identity field that disagrees (mirrors mcs_ckpt.cpp).
std::string describeStreamHeaderMismatch(const ckpt::JournalHeader& want,
                                         const ckpt::JournalHeader& got) {
  if (got.version != want.version) return "journal version mismatch";
  if (got.algo != want.algo) {
    return "algorithm mismatch: journal records '" + got.algo +
           "', this run uses '" + want.algo + "'";
  }
  if (got.seed != want.seed) return "seed mismatch";
  if (got.deployment_hash != want.deployment_hash) {
    return "deployment/churn mismatch: journal belongs to a different "
           "deployment or churn trace";
  }
  if (got.fault_hash != want.fault_hash) {
    return "fault-plan mismatch: journal recorded a different fault script";
  }
  return "journal header mismatch";
}

std::optional<ckpt::Snapshot> loadStreamSnapshot(const std::string& snap_path,
                                                 std::uint64_t deployment_hash,
                                                 int committed_slots) {
  std::ifstream is(snap_path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  ckpt::Snapshot snap;
  std::uint64_t dep = 0;
  if (!ckpt::decodeSnapshot(buf.str(), &snap, &dep)) return std::nullopt;
  if (dep != deployment_hash) return std::nullopt;
  if (snap.slot <= 0 || snap.slot > committed_slots) return std::nullopt;
  return snap;
}

}  // namespace

StreamingCheckpointedRun runStreamingCheckpointed(
    core::System& sys, OneShotScheduler& scheduler,
    const workload::ChurnTrace& trace, StreamingOptions opt,
    const ckpt::CheckpointSetup& setup) {
  opt.journal = nullptr;
  opt.resume = nullptr;
  if (setup.path.empty()) {
    StreamingCheckpointedRun run;
    run.result = runStreamingMcs(sys, scheduler, trace, opt);
    return run;
  }

  // The run identity folds the churn trace into the deployment hash: the
  // trace determines the trajectory as much as the deployment does, so a
  // journal must never resume under a different one.
  ckpt::JournalHeader header;
  header.algo = scheduler.name();
  header.seed = setup.seed;
  {
    std::ostringstream churn_csv;
    workload::saveChurnTrace(churn_csv, trace);
    header.deployment_hash =
        ckpt::fnv1a(churn_csv.str(), ckpt::deploymentHash(sys));
  }
  header.fault_hash = opt.faults != nullptr ? opt.faults->fingerprint() : 0;

  ckpt::JournalWriter writer;
  writer.snapshot_every = setup.snapshot_every;

  ckpt::JournalData data;
  bool resuming = false;
  std::string err;
  const bool exists = static_cast<bool>(std::ifstream(setup.path));
  if ((setup.resume || setup.auto_resume) && exists) {
    std::optional<ckpt::JournalData> loaded = ckpt::readJournal(setup.path, &err);
    if (!loaded.has_value()) return streamFailClosed(err);
    if (!(loaded->header == header)) {
      return streamFailClosed(
          describeStreamHeaderMismatch(header, loaded->header));
    }
    data = std::move(*loaded);
    data.snapshot =
        loadStreamSnapshot(setup.path + ".snap", header.deployment_hash,
                           static_cast<int>(data.slots.size()));
    if (!writer.openAppend(setup.path, header, data.valid_bytes, &err)) {
      return streamFailClosed(err);
    }
    resuming = true;
  } else if (setup.resume) {
    return streamFailClosed("cannot resume: no journal at " + setup.path);
  } else {
    if (!writer.create(setup.path, header, &err)) return streamFailClosed(err);
  }

  opt.journal = &writer;
  opt.resume = resuming ? &data : nullptr;

  StreamingCheckpointedRun run;
  run.resumed = resuming;
  run.result = runStreamingMcs(sys, scheduler, trace, opt);
  run.replayed_slots = run.result.replayed_slots;
  if (run.result.stop == McsStop::kJournalError) {
    run.ok = false;
    run.error = "journal write failed at slot " +
                std::to_string(run.result.slots) + " (disk full?)";
  } else if (run.result.stop == McsStop::kReplayMismatch) {
    run.ok = false;
    run.error =
        "replay diverged from journal at slot " +
        std::to_string(run.result.replayed_slots) +
        " (journal was recorded by a different run configuration?)";
  }
  return run;
}

}  // namespace rfid::sched
