// optimal_mcs.h — exact Minimum Covering Schedule on small instances.
//
// MCS is NP-hard (§III reduces from geometric set cover), but tiny
// instances admit an exact answer: breadth-first search over the lattice of
// unread-tag sets, where one transition activates any feasible scheduling
// set and retires its well-covered tags.  The exact size is what Theorem 1
// ("the greedy MWFS loop is a log n approximation") is stated against, so
// the tests validate the driver's guarantee empirically here.
//
// Complexity is O(2^m · F) where m = coverable tags and F = number of
// *useful* feasible sets, so callers must keep m ≤ ~20.  The search prunes
// dominated transitions: only maximal well-covered outcomes matter.
#pragma once

#include <cstdint>

#include "core/system.h"

namespace rfid::sched {

struct OptimalMcsResult {
  /// Exact minimum number of slots to serve every coverable unread tag;
  /// -1 if the search exceeded its budget.
  int slots = -1;
  /// States expanded by the BFS.
  std::int64_t states = 0;
};

/// Computes the exact MCS size for the system's current unread set.
/// Requires numReaders ≤ 20 and coverable unread tags ≤ 22 (asserted).
/// `max_states` bounds the BFS frontier work (0 = 4M default).
OptimalMcsResult optimalCoveringScheduleSize(const core::System& sys,
                                             std::int64_t max_states = 0);

}  // namespace rfid::sched
