#include "sched/hill_climbing.h"

#include <algorithm>
#include <numeric>

namespace rfid::sched {

OneShotResult HillClimbingScheduler::schedule(const core::System& sys) {
  if (!lazy_) return scheduleReference(sys);
  const int n = sys.numReaders();
  core::WeightEvaluator eval(sys);
  std::vector<char> open(static_cast<std::size_t>(n), 1);  // not yet blocked

  if (static_cast<int>(all_.size()) != n) {
    all_.resize(static_cast<std::size_t>(n));
    std::iota(all_.begin(), all_.end(), 0);
  }
  standalone_.sync(sys);
  const std::int64_t work0 = queue_.workUnits();
  queue_.beginRound(eval, all_, standalone_.weights());

  const bool counting = metrics() != nullptr;
  std::int64_t steps = 0;
  while (true) {
    // Cancellation checkpoint: one poll per climb step; the climbed-so-far
    // set is feasible by construction.
    if (cancelled()) break;
    // Exact argmax of the incremental weight over unblocked readers — same
    // pick and tie-break (lowest index) as the reference scan.
    const int best = queue_.pickBest(open);
    if (counting) ++steps;
    if (best < 0) break;  // incremental weight would be <= 0 everywhere
    eval.push(best);
    queue_.invalidate(best);
    open[static_cast<std::size_t>(best)] = 0;
    for (int v = 0; v < n; ++v) {
      if (open[static_cast<std::size_t>(v)] != 0 && !sys.independent(best, v)) {
        open[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  std::vector<int> members(eval.members().begin(), eval.members().end());
  std::sort(members.begin(), members.end());
  recordScheduleMetrics(queue_.workUnits() - work0, steps);
  return {members, eval.weight()};
}

OneShotResult HillClimbingScheduler::scheduleReference(const core::System& sys) {
  const int n = sys.numReaders();
  core::WeightEvaluator eval(sys);
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);  // conflicts with chosen

  // Work counting only when a registry is attached, so the detached hot
  // loop is byte-for-byte the uninstrumented one.
  const bool counting = metrics() != nullptr;
  std::int64_t peek_evals = 0;
  std::int64_t steps = 0;
  while (true) {
    // Cancellation checkpoint: one poll per climb step; the climbed-so-far
    // set is feasible by construction.
    if (cancelled()) break;
    int best = -1;
    int best_delta = 0;  // require strictly positive progress
    for (int v = 0; v < n; ++v) {
      if (blocked[static_cast<std::size_t>(v)] != 0) continue;
      const int delta = eval.peekDelta(v);
      if (counting) ++peek_evals;
      if (delta > best_delta) {
        best_delta = delta;
        best = v;
      }
    }
    if (counting) ++steps;
    if (best < 0) break;  // incremental weight would be <= 0 everywhere
    eval.push(best);
    blocked[static_cast<std::size_t>(best)] = 1;
    for (int v = 0; v < n; ++v) {
      if (blocked[static_cast<std::size_t>(v)] == 0 && !sys.independent(best, v)) {
        blocked[static_cast<std::size_t>(v)] = 1;
      }
    }
  }

  std::vector<int> members(eval.members().begin(), eval.members().end());
  std::sort(members.begin(), members.end());
  recordScheduleMetrics(peek_evals, steps);
  return {members, eval.weight()};
}

}  // namespace rfid::sched
