#include "sched/hill_climbing.h"

#include <algorithm>
#include <numeric>

#include "obs/timer.h"

namespace rfid::sched {

OneShotResult HillClimbingScheduler::schedule(const core::System& sys) {
  obs::ScopedTimer sched_span(trace() != nullptr ? metrics() : nullptr,
                              "ghc.schedule_us", trace(),
                              "ghc.schedule");
  if (!lazy_) return scheduleReference(sys);
  const int n = sys.numReaders();
  core::WeightEvaluator eval(sys);
  std::vector<char> open(static_cast<std::size_t>(n), 1);  // not yet blocked

  if (static_cast<int>(all_.size()) != n) {
    all_.resize(static_cast<std::size_t>(n));
    std::iota(all_.begin(), all_.end(), 0);
  }
  const core::StandaloneWeightCache::Stats sync0 = standalone_.stats();
  standalone_.sync(sys);
  {
    const core::StandaloneWeightCache::Stats& s = standalone_.stats();
    obs::CostBill b;
    b.cache_misses = s.full_builds - sync0.full_builds;
    b.cache_hits = s.diff_syncs - sync0.diff_syncs;
    b.cache_refreshes = s.rows_refreshed - sync0.rows_refreshed;
    b.csr_rows = b.cache_refreshes;
    chargeCost("ghc.cache_sync", b);
  }
  const std::int64_t work0 = queue_.workUnits();
  const std::int64_t pops0 = queue_.pops();
  const std::int64_t stale0 = queue_.stalePops();
  queue_.beginRound(eval, all_, standalone_.weights());

  const bool counting = countingWork();
  std::int64_t steps = 0;
  while (true) {
    // Cancellation checkpoint: one poll per climb step; the climbed-so-far
    // set is feasible by construction.
    if (cancelled()) break;
    // Exact argmax of the incremental weight over unblocked readers — same
    // pick and tie-break (lowest index) as the reference scan.
    const int best = queue_.pickBest(open);
    if (counting) ++steps;
    if (best < 0) break;  // incremental weight would be <= 0 everywhere
    eval.push(best);
    queue_.invalidate(best);
    open[static_cast<std::size_t>(best)] = 0;
    for (int v = 0; v < n; ++v) {
      if (open[static_cast<std::size_t>(v)] != 0 && !sys.independent(best, v)) {
        open[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  std::vector<int> members(eval.members().begin(), eval.members().end());
  std::sort(members.begin(), members.end());
  recordScheduleMetrics(queue_.workUnits() - work0, steps);
  {
    obs::CostBill b;
    b.weight_evals = eval.ops();
    b.csr_rows = b.weight_evals;
    b.queue_work = queue_.workUnits() - work0;
    b.queue_pops = queue_.pops() - pops0;
    b.queue_stale_pops = queue_.stalePops() - stale0;
    chargeCost("ghc.selection", b);
  }
  return {members, eval.weight()};
}

OneShotResult HillClimbingScheduler::scheduleReference(const core::System& sys) {
  const int n = sys.numReaders();
  core::WeightEvaluator eval(sys);
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);  // conflicts with chosen

  // Work counting only when an observer is attached, so the detached hot
  // loop is byte-for-byte the uninstrumented one.
  const bool counting = countingWork();
  std::int64_t peek_evals = 0;
  std::int64_t steps = 0;
  while (true) {
    // Cancellation checkpoint: one poll per climb step; the climbed-so-far
    // set is feasible by construction.
    if (cancelled()) break;
    int best = -1;
    int best_delta = 0;  // require strictly positive progress
    for (int v = 0; v < n; ++v) {
      if (blocked[static_cast<std::size_t>(v)] != 0) continue;
      const int delta = eval.peekDelta(v);
      if (counting) ++peek_evals;
      if (delta > best_delta) {
        best_delta = delta;
        best = v;
      }
    }
    if (counting) ++steps;
    if (best < 0) break;  // incremental weight would be <= 0 everywhere
    eval.push(best);
    blocked[static_cast<std::size_t>(best)] = 1;
    for (int v = 0; v < n; ++v) {
      if (blocked[static_cast<std::size_t>(v)] == 0 && !sys.independent(best, v)) {
        blocked[static_cast<std::size_t>(v)] = 1;
      }
    }
  }

  std::vector<int> members(eval.members().begin(), eval.members().end());
  std::sort(members.begin(), members.end());
  recordScheduleMetrics(peek_evals, steps);
  {
    obs::CostBill b;
    b.weight_evals = peek_evals + eval.ops();
    b.csr_rows = b.weight_evals;
    chargeCost("ghc.reference", b);
  }
  return {members, eval.weight()};
}

}  // namespace rfid::sched
