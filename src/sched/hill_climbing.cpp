#include "sched/hill_climbing.h"

#include <algorithm>

#include "core/weight.h"

namespace rfid::sched {

OneShotResult HillClimbingScheduler::schedule(const core::System& sys) {
  const int n = sys.numReaders();
  core::WeightEvaluator eval(sys);
  std::vector<char> blocked(static_cast<std::size_t>(n), 0);  // conflicts with chosen

  while (true) {
    int best = -1;
    int best_delta = 0;  // require strictly positive progress
    for (int v = 0; v < n; ++v) {
      if (blocked[static_cast<std::size_t>(v)] != 0) continue;
      const int delta = eval.peekDelta(v);
      if (delta > best_delta) {
        best_delta = delta;
        best = v;
      }
    }
    if (best < 0) break;  // incremental weight would be <= 0 everywhere
    eval.push(best);
    blocked[static_cast<std::size_t>(best)] = 1;
    for (int v = 0; v < n; ++v) {
      if (blocked[static_cast<std::size_t>(v)] == 0 && !sys.independent(best, v)) {
        blocked[static_cast<std::size_t>(v)] = 1;
      }
    }
  }

  std::vector<int> members(eval.members().begin(), eval.members().end());
  std::sort(members.begin(), members.end());
  return {members, eval.weight()};
}

}  // namespace rfid::sched
