#include "sched/ptas.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/parallel.h"
#include "geometry/shifted_grid.h"
#include "obs/timer.h"
#include "sched/exact.h"

namespace rfid::sched {

namespace {

using geom::Aabb;
using geom::Disk;
using geom::ShiftedGrid;
using geom::SquareKey;
using geom::SquareKeyHash;

/// One shift's DP over the square forest.
///
/// Scoring is *decomposed*: a node's solution value is the marginal weight
/// of its locally chosen disks (w.r.t. the boundary context) plus the sum
/// of its children's memoized values.  Decomposition is sound because two
/// disks homed in disjoint child boxes can neither conflict nor RRc-overlap
/// each other's *exclusive* accounting across boxes — each child scores
/// itself against a context that already contains every coarser chosen disk
/// intersecting it.  The one residual approximation (a local disk's own
/// exclusive tags later double-covered by a different child's pick) is
/// corrected at the top: the final reported weight is the referee's exact
/// w(X) and the best shift is chosen by that exact value.
class ShiftSolver {
 public:
  /// `single_weight` is shift-invariant and shared read-only across the
  /// parallel shifts; `scratch` must be exclusive to this solver's thread
  /// (all referee evaluations go through it).
  ShiftSolver(const core::System& sys, const ShiftedGrid& grid,
              const std::vector<Disk>& scaled, const std::vector<int>& level,
              const PtasOptions& opt, PtasScheduler::Stats& stats,
              std::span<const int> single_weight, core::WeightScratch& scratch)
      : sys_(sys), grid_(grid), scaled_(scaled), level_(level), opt_(opt),
        stats_(stats), single_weight_(single_weight), scratch_(scratch) {
    buildForest();
  }

  /// Runs the DP and returns the chosen reader set for this shift.
  std::vector<int> solveAll() {
    // The virtual root spans the whole plane: its children are the level-0
    // squares and its own pool holds the disks no square strictly contains
    // (only possible in promotion mode).  With an empty pool this reduces
    // to solving each root independently and uniting the results.
    Node virtual_root;
    virtual_root.home_disks = root_pool_;
    virtual_root.children = roots_;
    std::vector<int> total =
        solveNode(virtual_root, {}, /*is_virtual_root=*/true).members;
    std::sort(total.begin(), total.end());
    return total;
  }

 private:
  struct Node {
    std::vector<int> home_disks;     // disks homed at this square
    std::vector<SquareKey> children; // existing child squares only
  };

  struct Solution {
    std::vector<int> members;  // ascending
    int value = 0;             // marginal weight w.r.t. the context
  };

  void buildForest() {
    // Home every disk, then materialize ancestor chains.
    for (int i = 0; i < sys_.numReaders(); ++i) {
      const Disk& d = scaled_[static_cast<std::size_t>(i)];
      const int lv = level_[static_cast<std::size_t>(i)];
      // Readers that cannot serve any unread tag never help (adding a
      // reader cannot increase others' exclusive coverage), so prune them.
      if (single_weight_[static_cast<std::size_t>(i)] == 0) continue;
      SquareKey sq = grid_.containingSquare(d.center, lv);
      if (!d.strictlyInside(grid_.squareBox(sq))) {
        if (opt_.strict_survive) continue;  // §IV: drop for this shift
        // Promotion: walk up to the smallest enclosing square; disks that
        // even level-0 squares cannot contain go to the virtual root.
        bool promoted = false;
        while (sq.level > 0) {
          sq = grid_.parent(sq);
          if (d.strictlyInside(grid_.squareBox(sq))) {
            promoted = true;
            break;
          }
        }
        if (!promoted) {
          root_pool_.push_back(i);
          continue;
        }
      }
      nodes_[sq].home_disks.push_back(i);
      linkAncestors(sq);
    }
    std::sort(root_pool_.begin(), root_pool_.end());
    for (auto& [key, node] : nodes_) {
      // Deterministic traversal order regardless of hash layout.
      std::sort(node.children.begin(), node.children.end(),
                [](const SquareKey& a, const SquareKey& b) {
                  return std::tie(a.level, a.ix, a.iy) <
                         std::tie(b.level, b.ix, b.iy);
                });
      std::sort(node.home_disks.begin(), node.home_disks.end());
    }
    std::sort(roots_.begin(), roots_.end(),
              [](const SquareKey& a, const SquareKey& b) {
                return std::tie(a.level, a.ix, a.iy) <
                       std::tie(b.level, b.ix, b.iy);
              });
  }

  void linkAncestors(SquareKey sq) {
    while (sq.level > 0) {
      const SquareKey par = grid_.parent(sq);
      Node& pnode = nodes_[par];
      const bool fresh =
          std::find(pnode.children.begin(), pnode.children.end(), sq) ==
          pnode.children.end();
      if (fresh) pnode.children.push_back(sq);
      if (!fresh) return;  // ancestors above are already linked
      sq = par;
    }
    if (std::find(roots_.begin(), roots_.end(), sq) == roots_.end()) {
      roots_.push_back(sq);
    }
  }

  bool disksIndependent(int i, int j) const { return sys_.independent(i, j); }

  /// Memo key: square + sorted context reader ids.
  struct MemoKey {
    SquareKey sq;
    std::vector<int> ctx;
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const {
      std::size_t h = SquareKeyHash{}(k.sq);
      for (const int v : k.ctx) {
        h ^= static_cast<std::size_t>(v) + 0x9e3779b9u + (h << 6) + (h >> 2);
      }
      return h;
    }
  };

  /// w(x ∪ ctx) − w(ctx), evaluated exactly by the referee.
  int marginalWeight(std::vector<int> x, const std::vector<int>& ctx,
                     int ctx_weight) {
    if (x.empty()) return 0;
    ++stats_.weight_evals;
    x.insert(x.end(), ctx.begin(), ctx.end());
    return sys_.weight(x, scratch_) - ctx_weight;
  }

  Solution solve(const SquareKey& sq, const std::vector<int>& ctx) {
    const MemoKey key{sq, ctx};
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
    Solution sol = solveNode(nodes_.at(sq), ctx, /*is_virtual_root=*/false);
    ++stats_.dp_entries;
    memo_.emplace(key, sol);
    return sol;
  }

  /// The DP body, shared by real squares and the virtual root.
  Solution solveNode(const Node& node, const std::vector<int>& ctx,
                     bool is_virtual_root) {
    // Candidate pool Y: disks homed here, independent of the context.
    std::vector<int> pool;
    for (const int i : node.home_disks) {
      bool ok = true;
      for (const int c : ctx) {
        if (!disksIndependent(i, c)) { ok = false; break; }
      }
      if (ok) pool.push_back(i);
    }

    if (node.children.empty()) {
      // Leaf square: exact branch & bound over the full pool, marginal to
      // the context.  No Λ or pool truncation.
      BnbResult bnb =
          maxWeightFeasibleSubset(sys_, pool, opt_.leaf_node_limit, ctx);
      stats_.weight_evals += bnb.nodes;
      return {std::move(bnb.members), bnb.weight};
    }

    // Large internal pools: sequential conditioning — pick the coarse
    // local disks by exact B&B, then let each child fill in around them.
    // See PtasOptions::joint_enumeration_cap for the trade-off.
    if (static_cast<int>(pool.size()) > opt_.joint_enumeration_cap) {
      BnbResult local =
          maxWeightFeasibleSubset(sys_, pool, opt_.leaf_node_limit, ctx);
      stats_.weight_evals += local.nodes;
      Solution sol{std::move(local.members), local.weight};
      for (const SquareKey& child : node.children) {
        const Aabb cbox = grid_.squareBox(child);
        std::vector<int> child_ctx;
        for (const int c : ctx) {
          if (scaled_[static_cast<std::size_t>(c)].intersects(cbox)) child_ctx.push_back(c);
        }
        for (const int c : sol.members) {
          if (scaled_[static_cast<std::size_t>(c)].intersects(cbox)) child_ctx.push_back(c);
        }
        std::sort(child_ctx.begin(), child_ctx.end());
        const Solution sub = solve(child, child_ctx);
        sol.value += sub.value;
        sol.members.insert(sol.members.end(), sub.members.begin(),
                           sub.members.end());
      }
      std::sort(sol.members.begin(), sol.members.end());
      return sol;
    }

    // Moderate pools: joint (children-coupled) branch & bound over local
    // subsets D ⊆ pool; each partial D is completed by the children's
    // memoized solutions under the context (ctx ∪ D) restricted per child.
    // The depth cap Λ applies to real squares (the packing argument bounds
    // useful |D| there) but not to the virtual root.
    if (!is_virtual_root &&
        static_cast<int>(pool.size()) > opt_.square_candidate_cap) {
      std::stable_sort(pool.begin(), pool.end(), [this](int a, int b) {
        return single_weight_[static_cast<std::size_t>(a)] >
               single_weight_[static_cast<std::size_t>(b)];
      });
      pool.resize(static_cast<std::size_t>(opt_.square_candidate_cap));
      std::sort(pool.begin(), pool.end());
    }
    // Explore high-coverage candidates first (better incumbents earlier).
    std::stable_sort(pool.begin(), pool.end(), [this](int a, int b) {
      return single_weight_[static_cast<std::size_t>(a)] >
             single_weight_[static_cast<std::size_t>(b)];
    });

    const int ctx_weight = ctx.empty() ? 0 : sys_.weight(ctx, scratch_);
    if (!ctx.empty()) ++stats_.weight_evals;
    // Suffix sums of standalone weights for the admissible bound.
    std::vector<int> suffix(pool.size() + 1, 0);
    for (std::size_t i = pool.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + single_weight_[static_cast<std::size_t>(pool[i])];
    }

    Solution best;  // empty selection is always available (value ≥ 0)
    std::vector<int> chosen;
    dfs(node, ctx, ctx_weight, pool, suffix, 0, is_virtual_root, chosen, best);
    std::sort(best.members.begin(), best.members.end());
    return best;
  }

  /// Completes the current D = `chosen` via the children, scores it, and
  /// recurses on extensions with bound pruning.
  void dfs(const Node& node, const std::vector<int>& ctx, int ctx_weight,
           const std::vector<int>& pool, const std::vector<int>& suffix,
           std::size_t pos, bool is_virtual_root, std::vector<int>& chosen,
           Solution& best) {
    // Score D ∪ children(D).
    int child_sum = 0;
    std::vector<int> completion = chosen;
    for (const SquareKey& child : node.children) {
      const Aabb cbox = grid_.squareBox(child);
      std::vector<int> child_ctx;
      for (const int c : ctx) {
        if (scaled_[static_cast<std::size_t>(c)].intersects(cbox)) child_ctx.push_back(c);
      }
      for (const int c : chosen) {
        if (scaled_[static_cast<std::size_t>(c)].intersects(cbox)) child_ctx.push_back(c);
      }
      std::sort(child_ctx.begin(), child_ctx.end());
      // Child picks are strictly inside cbox.  A context disk that does not
      // intersect cbox can conflict with none of them (neither center can
      // lie in the other's disk), so the restriction is lossless; the child
      // enforces independence against everything passed down.
      const Solution sub = solve(child, child_ctx);
      child_sum += sub.value;
      completion.insert(completion.end(), sub.members.begin(),
                        sub.members.end());
    }
    const int d_value = marginalWeight(chosen, ctx, ctx_weight);
    const int value = d_value + child_sum;
    if (value > best.value || best.members.empty()) {
      if (value >= best.value) {
        best.value = value;
        best.members = std::move(completion);
      }
    }

    if (!is_virtual_root && static_cast<int>(chosen.size()) >= opt_.lambda) {
      return;
    }
    // Bound: extensions E add at most Σ singleWeight(E), and children
    // values only shrink as the context grows.
    if (d_value + child_sum + suffix[pos] <= best.value) return;

    for (std::size_t i = pos; i < pool.size(); ++i) {
      const int cand = pool[i];
      bool ok = true;
      for (const int c : chosen) {
        if (!disksIndependent(cand, c)) { ok = false; break; }
      }
      if (!ok) continue;
      chosen.push_back(cand);
      dfs(node, ctx, ctx_weight, pool, suffix, i + 1, is_virtual_root, chosen,
          best);
      chosen.pop_back();
    }
  }

  const core::System& sys_;
  const ShiftedGrid& grid_;
  const std::vector<Disk>& scaled_;
  const std::vector<int>& level_;
  const PtasOptions& opt_;
  PtasScheduler::Stats& stats_;
  std::span<const int> single_weight_;
  core::WeightScratch& scratch_;
  std::unordered_map<SquareKey, Node, SquareKeyHash> nodes_;
  std::vector<SquareKey> roots_;
  std::vector<int> root_pool_;  // disks no square strictly contains
  std::unordered_map<MemoKey, Solution, MemoKeyHash> memo_;
};

}  // namespace

PtasScheduler::PtasScheduler(PtasOptions opt) : opt_(opt) {
  assert(opt_.k >= 2 && "shifting requires k >= 2");
  assert(opt_.lambda >= 1);
}

OneShotResult PtasScheduler::schedule(const core::System& sys) {
  stats_ = {};
  const int n = sys.numReaders();
  if (n == 0) return {};
  obs::ScopedTimer sched_span(trace() != nullptr ? metrics() : nullptr,
                              "alg1.schedule_us", trace(),
                              "alg1.schedule");

  // Scale so the largest interference radius becomes exactly 1/2 (§IV).
  double max_r = 0.0;
  for (const core::Reader& r : sys.readers()) {
    max_r = std::max(max_r, r.interference_radius);
  }
  assert(max_r > 0.0);
  const double scale = 0.5 / max_r;
  std::vector<Disk> scaled(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const core::Reader& r = sys.reader(i);
    scaled[static_cast<std::size_t>(i)] = {r.pos * scale, r.interference_radius * scale};
  }

  // Standalone weights are shift-invariant: compute once, share read-only
  // across the shift fan-out.
  std::vector<int> single_weight(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    single_weight[static_cast<std::size_t>(i)] = sys.singleWeight(i);
  }
  {
    obs::CostBill b;
    b.weight_evals = n;
    b.csr_rows = n;
    chargeCost("alg1.standalone", b);
  }

  // The k² shifts are independent given the frozen read-state, so they fan
  // out over threads, each worker evaluating weights through its own
  // scratch and filling its shifts' private slots.  Cancellation poll: one
  // per shift — a shift not yet started is skipped (done stays false), so
  // stopping early just returns the best of the shifts finished so far.
  struct ShiftOutcome {
    std::vector<int> x;
    int w = 0;
    int max_level = 0;
    PtasScheduler::Stats stats;
    bool done = false;
  };
  const int num_shifts = opt_.k * opt_.k;
  std::vector<ShiftOutcome> shifts(static_cast<std::size_t>(num_shifts));
  const std::uint64_t parent_span = sched_span.spanId();
  analysis::parallelForChunks(
      0, num_shifts,
      [this, &sys, &scaled, &single_weight, &shifts, parent_span, n](
          int /*worker*/, int lo, int hi) {
        core::WeightScratch scratch;
        sys.initScratch(scratch);
        for (int idx = lo; idx < hi; ++idx) {
          if (cancelled()) continue;
          ShiftOutcome& out = shifts[static_cast<std::size_t>(idx)];
          std::optional<obs::ScopedTimer> span;
          if (trace() != nullptr) {
            // Worker-thread span: parent it under alg1.schedule explicitly.
            span.emplace(nullptr, "alg1.shift_us", trace(), "alg1.shift");
            span->setParent(parent_span);
            span->arg("r", static_cast<double>(idx / opt_.k));
            span->arg("s", static_cast<double>(idx % opt_.k));
          }
          const ShiftedGrid grid(opt_.k, idx / opt_.k, idx % opt_.k);
          std::vector<int> level(static_cast<std::size_t>(n));
          for (int i = 0; i < n; ++i) {
            level[static_cast<std::size_t>(i)] =
                grid.levelOf(scaled[static_cast<std::size_t>(i)].radius);
            out.max_level = std::max(out.max_level, level[static_cast<std::size_t>(i)]);
          }
          ShiftSolver solver(sys, grid, scaled, level, opt_, out.stats,
                             single_weight, scratch);
          out.x = solver.solveAll();
          out.w = sys.weight(out.x, scratch);
          ++out.stats.weight_evals;
          out.done = true;
          if (span.has_value()) {
            span->arg("weight", static_cast<double>(out.w));
            span->arg("dp_entries", static_cast<double>(out.stats.dp_entries));
          }
        }
      },
      opt_.parallel_shifts ? opt_.num_threads : 1);

  // Reduce in shift order: replicates the sequential loop's strict-
  // improvement, first-wins best-shift choice for any thread count.
  OneShotResult best;
  int max_level = 0;
  obs::CostBill shift_bill;
  for (int idx = 0; idx < num_shifts; ++idx) {
    ShiftOutcome& out = shifts[static_cast<std::size_t>(idx)];
    if (!out.done) continue;
    stats_.dp_entries += out.stats.dp_entries;
    stats_.weight_evals += out.stats.weight_evals;
    shift_bill.weight_evals += out.stats.weight_evals;
    shift_bill.dp_entries += out.stats.dp_entries;
    max_level = std::max(max_level, out.max_level);
    if (out.w > best.weight || best.readers.empty()) {
      best.weight = out.w;
      best.readers = std::move(out.x);
      stats_.best_shift_r = idx / opt_.k;
      stats_.best_shift_s = idx % opt_.k;
    }
  }
  chargeCost("alg1.shifts", shift_bill);
  stats_.levels = max_level + 1;
  recordScheduleMetrics(stats_.weight_evals, stats_.dp_entries);
  return best;
}

}  // namespace rfid::sched
