#include "sched/scheduler.h"

namespace rfid::sched {

void OneShotScheduler::recordScheduleMetrics(std::int64_t weight_evals,
                                             std::int64_t candidates) const {
  if (metrics_ == nullptr) return;
  metrics_->counter("sched.schedule_calls").add(1);
  metrics_->counter("sched.weight_evals").add(weight_evals);
  metrics_->counter("sched.candidates").add(candidates);
}

}  // namespace rfid::sched
