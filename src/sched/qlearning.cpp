#include "sched/qlearning.h"

#include <algorithm>
#include <cassert>

namespace rfid::sched {

QLearningScheduler::QLearningScheduler(std::uint64_t seed,
                                       QLearningOptions opt)
    : opt_(opt), rng_(seed) {
  assert(opt_.frame_slots >= 1);
  assert(opt_.alpha > 0.0 && opt_.alpha <= 1.0);
}

void QLearningScheduler::train(const core::System& sys) {
  const int n = sys.numReaders();
  const int S = opt_.frame_slots;
  if (static_cast<int>(q_.size()) != n) {
    q_.assign(static_cast<std::size_t>(n),
              std::vector<double>(static_cast<std::size_t>(S), 0.0));
  }

  double eps = opt_.epsilon;
  std::vector<int> pick(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> per_slot(static_cast<std::size_t>(S));
  double episode_reward = 0.0;

  for (int e = 0; e < opt_.episodes; ++e) {
    // ε-greedy slot choice per reader.
    for (int v = 0; v < n; ++v) {
      if (rng_.uniform(0.0, 1.0) < eps) {
        pick[static_cast<std::size_t>(v)] = rng_.uniformInt(0, S - 1);
      } else {
        const auto& row = q_[static_cast<std::size_t>(v)];
        pick[static_cast<std::size_t>(v)] = static_cast<int>(
            std::max_element(row.begin(), row.end()) - row.begin());
      }
    }
    // Simulate the frame: per slot, who would serve what.
    for (auto& s : per_slot) s.clear();
    for (int v = 0; v < n; ++v) {
      per_slot[static_cast<std::size_t>(pick[static_cast<std::size_t>(v)])].push_back(v);
    }
    episode_reward = 0.0;
    for (int s = 0; s < S; ++s) {
      const auto& active = per_slot[static_cast<std::size_t>(s)];
      if (active.empty()) continue;
      // Reward per reader: its exclusively-served unread tags this slot —
      // the "successful read" feedback HiQ learns from.  Victims earn 0.
      const std::vector<int> served = sys.wellCoveredTags(active);
      for (const int v : active) {
        int reward = 0;
        for (const int t : sys.coverage(v)) {
          if (std::binary_search(served.begin(), served.end(), t)) ++reward;
        }
        double& qv = q_[static_cast<std::size_t>(v)][static_cast<std::size_t>(s)];
        qv = (1.0 - opt_.alpha) * qv + opt_.alpha * reward;
        episode_reward += reward;
      }
    }
    eps *= opt_.epsilon_decay;
  }
  ++stats_.trainings;
  stats_.episodes_run += opt_.episodes;
  stats_.last_mean_reward =
      opt_.episodes > 0 ? episode_reward / std::max(1, n) : 0.0;
  slots_since_training_ = 0;
}

std::vector<int> QLearningScheduler::assignment() const {
  std::vector<int> a;
  a.reserve(q_.size());
  for (const auto& row : q_) {
    a.push_back(static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin()));
  }
  return a;
}

OneShotResult QLearningScheduler::schedule(const core::System& sys) {
  const bool stale = opt_.retrain_every > 0 &&
                     slots_since_training_ >= opt_.retrain_every;
  if (slots_since_training_ < 0 || stale ||
      static_cast<int>(q_.size()) != sys.numReaders()) {
    train(sys);
  }
  const std::vector<int> a = assignment();
  const int s = slot_counter_ % opt_.frame_slots;
  ++slot_counter_;
  ++slots_since_training_;

  std::vector<int> active;
  for (int v = 0; v < sys.numReaders(); ++v) {
    if (a[static_cast<std::size_t>(v)] == s) active.push_back(v);
  }
  recordScheduleMetrics(1, opt_.frame_slots);
  return {active, sys.weight(active)};
}

}  // namespace rfid::sched
