// mcs.h — the Minimum Covering Schedule greedy driver (paper §III).
//
// "At the q-th time-slot, choose a feasible scheduling set with maximum
//  weight and let them be active; terminate when there are no unread tags
//  remained."  (Theorem 1: with an exact per-slot MWFS this is a log n
//  approximation of the minimum covering schedule.)
//
// The driver iterates any OneShotScheduler, marks the well-covered tags of
// each slot as read (the tag goes passive, Definition 4), and records the
// full schedule.  It is the referee: whatever set a scheduler proposes is
// re-evaluated with the Definition 1 semantics — infeasible proposals (e.g.
// a not-yet-converged Colorwave class) simply serve fewer tags, exactly as
// the physics would dictate.
//
// With a fault::FaultPlan attached the referee also injects the plan's
// failures (docs/faults.md): crashed proposal members read nothing (loud
// crashes still jam their interference disk), the driver re-plans around
// readers it has seen fail, interrogation misses re-arm individual tags,
// and the loop terminates early once every remaining coverable tag is
// orphaned by permanently dead readers.  An empty plan takes none of these
// paths — the run is bit-identical to one with no plan at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ckpt/budget.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"

namespace rfid::fault {
class FaultPlan;
}

namespace rfid::ckpt {
class JournalWriter;
struct JournalData;
}  // namespace rfid::ckpt

namespace rfid::check {
class ScheduleValidator;
}

namespace rfid::sched {

struct McsOptions {
  /// Absolute slot cap (guards against pathological schedulers).
  int max_slots = 100000;
  /// Abort after this many consecutive zero-progress slots.  A stalled
  /// randomized baseline (Colorwave before convergence) may waste slots;
  /// a *persistently* stalled one would loop forever.
  int max_stall = 500;
  /// Observability (both optional; nullptr = off, existing call sites
  /// compile unchanged).  With `metrics` the driver maintains the counters
  /// `mcs.slots` / `mcs.tags_read` / `mcs.stall_slots` and the
  /// distributions `mcs.slot_proposed_readers` / `mcs.slot_tags_read`.
  /// With `trace` it additionally emits one kSlot span per executed slot
  /// (proposed set size, claimed vs. delivered weight, running stall
  /// count) plus the wall-clock histogram `mcs.slot_us` — wall-clock data
  /// rides with tracing only, so metrics-only runs stay deterministic.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
  /// Deterministic cost attribution (optional).  Share one CostLedger with
  /// the scheduler (OneShotScheduler::attachCost): the scheduler charges
  /// its per-phase bills during schedule(), the driver adds the referee's
  /// "mcs.referee" bill, and for every *committed* slot the driver commits
  /// the slot's total bill (the ledger delta across the slot) so the export
  /// carries a per-slot work timeline next to the per-phase totals.  All
  /// charges happen on the driving thread in program order, so the JSON is
  /// bit-identical across --threads counts — including replayed resumes,
  /// which recompute every slot through this same loop (obs/cost.h).
  obs::CostLedger* cost = nullptr;
  /// Fault injection (both optional).  `faults` drives the referee: reader
  /// crash intervals, interrogation misses, and orphan-aware termination.
  /// `channel` is stepped to the current slot index before every schedule()
  /// call so an attached distributed scheduler sees the same outage window
  /// the referee charges.  With `faults` null or empty the driver takes the
  /// exact pre-fault code path (bit-identical results and metrics).
  const fault::FaultPlan* faults = nullptr;
  fault::ChannelModel* channel = nullptr;
  /// A reader seen crashed stays benched ("suspected dead") for this many
  /// subsequent slots: the driver strips it from proposals (re-planning),
  /// then re-probes so a recovered reader rejoins.  <= 0 disables benching.
  int reprobe_interval = 8;
  /// Execution budget (optional).  Charged at every slot boundary; a fired
  /// budget ends the run with a valid best-so-far result marked
  /// `interrupted`.  A slot whose schedule() call observed the budget's
  /// CancelToken is discarded, never committed, so the committed prefix of
  /// an interrupted run is always a prefix of the uninterrupted trajectory
  /// (the anytime contract, docs/recovery.md).  Callers who also want the
  /// schedulers to stop mid-search attach budget->token() themselves
  /// (OneShotScheduler::attachCancel).
  ckpt::RunBudget* budget = nullptr;
  /// Liveness heartbeat (optional).  Bumped once per driver loop iteration
  /// — before the slot's schedule() call — with a relaxed atomic add, so an
  /// external watchdog (src/service/) can distinguish a run that is slowly
  /// making slot progress from one wedged inside a single schedule() call.
  /// The heartbeat carries no data and decides nothing: results are
  /// bit-identical with or without it.
  std::atomic<std::int64_t>* progress = nullptr;
  /// Crash-safe journaling (optional).  With `journal` attached the driver
  /// appends one record per committed slot and writes a periodic atomic
  /// snapshot of the read-state bitmap.  With `resume` attached the driver
  /// first *replays* the journal's committed prefix through this exact loop
  /// — same schedule() calls, same referee verdicts, same metric bumps —
  /// verifying every slot against its record (and the snapshot against the
  /// replayed bitmap at its boundary), then switches to live appending.
  /// Any divergence stops with McsStop::kReplayMismatch; an append/snapshot
  /// IO failure stops with McsStop::kJournalError.  Both nullptr: the run
  /// is bit-identical to the pre-checkpoint driver.
  ckpt::JournalWriter* journal = nullptr;
  const ckpt::JournalData* resume = nullptr;
  /// Runtime invariant oracle (optional; check/invariants.h).  The driver
  /// calls beginRun before the loop, checkSlot on every slot *before*
  /// committing it (journal append / markRead), and checkRun after natural
  /// termination.  A fail-fast violation ends the run with
  /// McsStop::kCheckFailed, the offending slot never committed.  The
  /// validator's CheckOptions must carry the same fault plan and
  /// reprobe_interval as this struct.  nullptr: the driver is bit-identical
  /// to the unchecked one.
  check::ScheduleValidator* validator = nullptr;
  /// Commit hook (optional).  Called once per committed slot, after the
  /// referee's verdict is applied (markRead) — arguments are the slot index,
  /// the proposed active set, and the served tags.  Fires on replayed
  /// resumes too (they recompute every slot through the same loop), so an
  /// observer's totals match a fresh run.  The hook observes and must not
  /// mutate the system; nullptr keeps the driver bit-identical to the
  /// pre-hook one.  Used by the link-layer co-simulation (protocol/) to
  /// consume slots online without sched depending on protocol.
  std::function<void(int slot, std::span<const int> active,
                     std::span<const int> served)>
      on_commit;
};

/// Why runCoveringSchedule returned (kNone: natural termination — covered,
/// stalled out, or hit McsOptions::max_slots).
enum class McsStop {
  kNone,
  kSlotCap,         // budget: committed-slot cap reached
  kDeadline,        // budget: wall-clock deadline passed
  kCancelled,       // budget: explicit cancellation
  kJournalError,    // checkpoint: journal append / snapshot write failed
  kReplayMismatch,  // checkpoint: replay diverged from the journal
  kCheckFailed,     // check: the invariant oracle flagged a violation
};

const char* mcsStopName(McsStop s);

/// One executed time-slot.
struct SlotRecord {
  std::vector<int> active;   // the set the scheduler proposed
  int tags_read = 0;         // well-covered tags actually served
};

/// Degradation accounting for a fault-injected run (all zero otherwise):
/// how far the achieved schedule fell short of the ideal one, and why.
struct McsDegradation {
  /// Slots where any fault touched execution (crash, bench, miss, jamming).
  int faulty_slots = 0;
  /// Faulty slots that served zero tags but would have served some had the
  /// proposal executed unfaulted — air time wholly lost to faults.
  int slots_lost = 0;
  /// Proposal members that were crashed when their slot executed.
  int crashed_activations = 0;
  /// Proposal members stripped pre-execution because the driver had seen
  /// them fail within the last reprobe_interval slots.
  int replanned_activations = 0;
  /// Well-covered tags lost to interrogation misses (still unread after).
  int tags_missed = 0;
  /// Coverable tags left unread that no future slot could serve: every
  /// coverer permanently dead, or permanently jammed / victimized by a
  /// loud-dead reader's stuck transmitter (the unservable-forever
  /// predicate; see runCoveringSchedule).
  int tags_orphaned = 0;
  /// Tags the executed proposals would have served with no faults injected
  /// (the per-slot ideal counterfactual, summed).  Achieved coverage is
  /// McsResult::tags_read; the gap is the price of the fault plan.
  int ideal_tags_read = 0;
};

struct McsResult {
  /// The size of the covering schedule: total slots consumed, including
  /// zero-progress slots (they cost real time on air).
  int slots = 0;
  int tags_read = 0;
  /// Unread tags that no reader covers (can never be served — excluded
  /// from the covering requirement, Definition 4 covers only the monitored
  /// region M).
  int uncoverable = 0;
  /// True iff every coverable tag was served within the slot caps.  Stays
  /// false when permanent reader deaths orphan tags: the schedule
  /// terminated, but it does not cover M.
  bool completed = false;
  std::vector<SlotRecord> schedule;
  /// Fault accounting (all zero without an attached non-empty FaultPlan).
  McsDegradation degradation;
  /// True when an armed RunBudget ended the run early (stop names why).
  /// The result is still valid — a verbatim prefix of the uninterrupted
  /// trajectory — and, when journaled, resumable to the full run.
  bool interrupted = false;
  McsStop stop = McsStop::kNone;
  /// Committed slots re-verified from the journal (resume runs only).
  int replayed_slots = 0;
};

/// Runs the greedy covering-schedule loop, mutating `sys`'s read-state.
/// Call sys.resetReads() first if the system was used before.
McsResult runCoveringSchedule(core::System& sys, OneShotScheduler& scheduler,
                              const McsOptions& opt = {});

/// Unread coverable tags no future slot can serve at `slot` under the
/// plan's *permanent* failures: every coverer permanently dead, the tag
/// permanently jammed by a loud-dead transmitter (RRc forever), or every
/// live coverer an RTc victim of one.  Shared by the MCS and streaming
/// drivers (both terminate early when orphans swallow the unread set).
int countMcsOrphans(const core::System& sys, const fault::FaultPlan& plan,
                    int slot);

}  // namespace rfid::sched
