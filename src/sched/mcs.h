// mcs.h — the Minimum Covering Schedule greedy driver (paper §III).
//
// "At the q-th time-slot, choose a feasible scheduling set with maximum
//  weight and let them be active; terminate when there are no unread tags
//  remained."  (Theorem 1: with an exact per-slot MWFS this is a log n
//  approximation of the minimum covering schedule.)
//
// The driver iterates any OneShotScheduler, marks the well-covered tags of
// each slot as read (the tag goes passive, Definition 4), and records the
// full schedule.  It is the referee: whatever set a scheduler proposes is
// re-evaluated with the Definition 1 semantics — infeasible proposals (e.g.
// a not-yet-converged Colorwave class) simply serve fewer tags, exactly as
// the physics would dictate.
#pragma once

#include <vector>

#include "core/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"

namespace rfid::sched {

struct McsOptions {
  /// Absolute slot cap (guards against pathological schedulers).
  int max_slots = 100000;
  /// Abort after this many consecutive zero-progress slots.  A stalled
  /// randomized baseline (Colorwave before convergence) may waste slots;
  /// a *persistently* stalled one would loop forever.
  int max_stall = 500;
  /// Observability (both optional; nullptr = off, existing call sites
  /// compile unchanged).  With `metrics` the driver maintains the counters
  /// `mcs.slots` / `mcs.tags_read` / `mcs.stall_slots` and the
  /// distributions `mcs.slot_proposed_readers` / `mcs.slot_tags_read`.
  /// With `trace` it additionally emits one kSlot span per executed slot
  /// (proposed set size, claimed vs. delivered weight, running stall
  /// count) plus the wall-clock histogram `mcs.slot_us` — wall-clock data
  /// rides with tracing only, so metrics-only runs stay deterministic.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

/// One executed time-slot.
struct SlotRecord {
  std::vector<int> active;   // the set the scheduler proposed
  int tags_read = 0;         // well-covered tags actually served
};

struct McsResult {
  /// The size of the covering schedule: total slots consumed, including
  /// zero-progress slots (they cost real time on air).
  int slots = 0;
  int tags_read = 0;
  /// Unread tags that no reader covers (can never be served — excluded
  /// from the covering requirement, Definition 4 covers only the monitored
  /// region M).
  int uncoverable = 0;
  /// True iff every coverable tag was served within the slot caps.
  bool completed = false;
  std::vector<SlotRecord> schedule;
};

/// Runs the greedy covering-schedule loop, mutating `sys`'s read-state.
/// Call sys.resetReads() first if the system was used before.
McsResult runCoveringSchedule(core::System& sys, OneShotScheduler& scheduler,
                              const McsOptions& opt = {});

}  // namespace rfid::sched
