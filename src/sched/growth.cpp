#include "sched/growth.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>

#include "analysis/parallel.h"
#include "graph/traversal.h"
#include "obs/timer.h"
#include "sched/exact.h"

namespace rfid::sched {

GrowthScheduler::GrowthScheduler(const graph::InterferenceGraph& g,
                                 GrowthOptions opt)
    : graph_(&g), opt_(opt) {
  assert(opt_.rho > 1.0 && "rho must exceed 1 for inequality (1) to bind");
  assert(opt_.hop_cap >= 0);
}

/// Per-worker mutable state, reused across the components of one chunk.
/// runComponent restores `alive` and the evaluator to their pristine state
/// before returning, so construction cost is paid once per chunk.
struct GrowthScheduler::Worker {
  explicit Worker(const core::System& sys)
      : alive(static_cast<std::size_t>(sys.numReaders()), 0), eval(sys) {}
  std::vector<char> alive;
  core::WeightEvaluator eval;
  core::LazyGreedyQueue queue;
  // Bounded-BFS scratch: the Γ-growth and kill-neighborhood queries run
  // thousands of times per schedule on small neighborhoods; the stateless
  // kHopNeighborhoodAlive would pay an O(n) allocation + scan on each.
  graph::BfsScratch bfs;
  std::vector<int> hood;
  // Local-MWFS arena: one tiny branch & bound per pick; reusing the
  // instance rows and search buffers removes the dominant per-call cost.
  BnbScratch bnb;
};

void GrowthScheduler::ensureComponents(const core::System& sys) {
  if (groups_sys_id_ == sys.instanceId() &&
      groups_epoch_ == sys.structuralEpoch()) {
    return;
  }
  groups_sys_id_ = sys.instanceId();
  groups_epoch_ = sys.structuralEpoch();
  const int n = sys.numReaders();

  // Union-find over the union of the interference graph and the
  // shares-a-tag relation (readers covering a common tag).  Closure under
  // both is what makes the components independent: no shared tags means a
  // commit in one component never moves another component's marginal
  // deltas (or its B&B preload, whose foreign tags the local remap drops),
  // and no edges means kill neighborhoods stay inside.
  std::vector<int> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  const auto unite = [&parent, &find](int a, int b) {
    const int ra = find(a);
    const int rb = find(b);
    if (ra != rb) parent[static_cast<std::size_t>(std::max(ra, rb))] = std::min(ra, rb);
  };
  for (int u = 0; u < n; ++u) {
    for (const int v : graph_->neighbors(u)) unite(u, v);
  }
  for (int t = 0; t < sys.numTags(); ++t) {
    const auto cs = sys.coverers(t);
    for (std::size_t i = 1; i < cs.size(); ++i) unite(cs[0], cs[i]);
  }

  // Dense component ids in order of smallest member; member lists ascending.
  groups_.clear();
  std::vector<int> comp_of(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    const int r = find(v);
    if (comp_of[static_cast<std::size_t>(r)] < 0) {
      comp_of[static_cast<std::size_t>(r)] = static_cast<int>(groups_.size());
      groups_.emplace_back();
    }
    groups_[static_cast<std::size_t>(comp_of[static_cast<std::size_t>(r)])]
        .push_back(v);
  }
}

void GrowthScheduler::runComponent(const core::System& sys,
                                   std::span<const int> comp, Worker& worker,
                                   CompResult& out) const {
  for (const int u : comp) worker.alive[static_cast<std::size_t>(u)] = 1;
  const std::int64_t work0 = worker.queue.workUnits();
  const std::int64_t ops0 = worker.eval.ops();
  const std::int64_t pops0 = worker.queue.pops();
  const std::int64_t stale0 = worker.queue.stalePops();
  worker.queue.beginRound(worker.eval, comp, standalone_.weights());

  while (true) {
    // Cancellation checkpoint: one poll per coordinator pick.  X is
    // feasible after every completed pick, so the partial set is a valid
    // (if lighter) one-shot answer.
    if (cancelled()) break;
    // Exact argmax of the marginal standalone weight over alive readers —
    // same pick, same tie-break (lowest index) as the reference scan.
    int vw = 0;
    const int v = worker.queue.pickBest(worker.alive, &vw);
    if (v < 0) break;
    ++out.stats.picks;

    // Grow Γ_r until inequality (1) fails (or the cap / the component edge
    // is hit — once N stops growing, Γ stops improving and (1) fails with
    // ratio 1 < ρ anyway).
    std::vector<int> gamma = {v};  // Γ_0 = MWFS within {v}
    int gamma_w = vw;
    int rbar = 0;
    for (int r = 0; r < opt_.hop_cap; ++r) {
      graph::kHopNeighborhoodAlive(*graph_, v, r + 1, worker.alive, worker.bfs,
                                   worker.hood);
      // Alone in its alive neighborhood: the MWFS over {v} is ({v}, w(v)'s
      // marginal) and inequality (1) fails immediately (w < ρ·w for ρ > 1,
      // and Γ_r ⊆ N(v)^{r+1} means the neighborhood can never grow again),
      // so the exact solve would expand nodes only to confirm the break.
      if (worker.hood.size() <= 1) break;
      const BnbResult next =
          maxWeightFeasibleSubset(sys, worker.hood, opt_.node_limit,
                                  worker.eval, cancelToken(), &worker.bnb);
      out.stats.bnb_nodes += next.nodes;
      if (static_cast<double>(next.weight) <
          opt_.rho * static_cast<double>(gamma_w)) {
        break;  // first violation: keep Γ_r
      }
      gamma = next.members;
      gamma_w = next.weight;
      rbar = r + 1;
    }
    out.stats.max_rbar = std::max(out.stats.max_rbar, rbar);

    out.members.insert(out.members.end(), gamma.begin(), gamma.end());
    for (const int u : gamma) {
      worker.eval.push(u);
      worker.queue.invalidate(u);
    }

    // Remove N(v)^{r̄+1}; guarantees feasibility of the union across picks.
    graph::kHopNeighborhoodAlive(*graph_, v, rbar + 1, worker.alive, worker.bfs,
                                 worker.hood);
    for (const int u : worker.hood) {
      worker.alive[static_cast<std::size_t>(u)] = 0;
    }
  }

  out.work = worker.queue.workUnits() - work0;
  // The component's deterministic bill, read from the worker's own engines
  // (clear() below pops the committed members — take the snapshot first so
  // the teardown walks don't inflate the bill).
  out.bill.weight_evals = worker.eval.ops() - ops0;
  out.bill.csr_rows = out.bill.weight_evals;
  out.bill.queue_pops = worker.queue.pops() - pops0;
  out.bill.queue_stale_pops = worker.queue.stalePops() - stale0;
  out.bill.queue_work = out.work;
  out.bill.bnb_nodes = out.stats.bnb_nodes;
  worker.eval.clear();
  for (const int u : comp) worker.alive[static_cast<std::size_t>(u)] = 0;
}

OneShotResult GrowthScheduler::schedule(const core::System& sys) {
  assert(graph_->numNodes() == sys.numReaders());
  stats_ = {};
  obs::ScopedTimer sched_span(trace() != nullptr ? metrics() : nullptr,
                              "alg2.schedule_us", trace(),
                              "alg2.schedule");
  if (!opt_.lazy_selection) return scheduleReference(sys);

  ensureComponents(sys);
  const core::StandaloneWeightCache::Stats sync0 = standalone_.stats();
  standalone_.sync(sys);
  {
    const core::StandaloneWeightCache::Stats& s = standalone_.stats();
    obs::CostBill b;
    b.cache_misses = s.full_builds - sync0.full_builds;
    b.cache_hits = s.diff_syncs - sync0.diff_syncs;
    b.cache_refreshes = s.rows_refreshed - sync0.rows_refreshed;
    b.csr_rows = b.cache_refreshes;
    chargeCost("alg2.cache_sync", b);
  }

  // Solve the interaction components independently — they share no tags and
  // no edges, so each per-component greedy run is exactly the restriction
  // of the reference global run — and reduce in component order, which
  // makes the result (and the stats) identical for every thread count.
  const int num_comps = static_cast<int>(groups_.size());
  std::vector<CompResult> results(static_cast<std::size_t>(num_comps));
  const std::uint64_t parent_span = sched_span.spanId();
  analysis::parallelForChunks(
      0, num_comps,
      [this, &sys, &results, parent_span](int /*worker_idx*/, int lo, int hi) {
        Worker worker(sys);
        for (int c = lo; c < hi; ++c) {
          CompResult& res = results[static_cast<std::size_t>(c)];
          std::optional<obs::ScopedTimer> span;
          if (trace() != nullptr) {
            // Worker-thread span: the causal parent (the alg2.schedule
            // span) lives on the dispatching thread, so set it explicitly.
            span.emplace(nullptr, "alg2.component_us", trace(),
                         "alg2.component");
            span->setParent(parent_span);
            span->arg("component", static_cast<double>(c));
          }
          runComponent(sys, groups_[static_cast<std::size_t>(c)], worker, res);
          if (span.has_value()) {
            span->arg("picks", static_cast<double>(res.stats.picks));
            span->arg("members", static_cast<double>(res.members.size()));
            span->arg("bnb_nodes", static_cast<double>(res.stats.bnb_nodes));
          }
        }
      },
      opt_.num_threads);

  std::vector<int> X;
  std::int64_t work = 0;
  obs::CostBill selection;
  obs::CostBill bnb;
  for (const CompResult& r : results) {
    X.insert(X.end(), r.members.begin(), r.members.end());
    stats_.picks += r.stats.picks;
    stats_.bnb_nodes += r.stats.bnb_nodes;
    stats_.max_rbar = std::max(stats_.max_rbar, r.stats.max_rbar);
    work += r.work;
    selection.add(r.bill);
  }
  // Split the component bills into the selection machinery and the local
  // exact solves so the report can compare the two lines directly.
  bnb.bnb_nodes = selection.bnb_nodes;
  selection.bnb_nodes = 0;
  chargeCost("alg2.selection", selection);
  chargeCost("alg2.bnb", bnb);
  std::sort(X.begin(), X.end());
  recordScheduleMetrics(work + stats_.bnb_nodes, stats_.picks);
  return {X, sys.weight(X)};
}

OneShotResult GrowthScheduler::scheduleReference(const core::System& sys) {
  const int n = sys.numReaders();

  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<int> X;
  // Tracks X's coverage so picks and local MWFS are scored *marginally*:
  // readers from different (graph-independent) regions can still share
  // interrogation area and cancel each other's tags through RRc, which the
  // paper's weight definition charges but pure local scoring would miss.
  core::WeightEvaluator committed(sys);

  // Work counting only when an observer is attached, so the detached hot
  // loop is byte-for-byte the uninstrumented one.
  const bool counting = countingWork();
  std::int64_t peek_evals = 0;
  while (true) {
    // Cancellation checkpoint: one poll per coordinator pick.  X is
    // feasible after every completed pick, so the partial set is a valid
    // (if lighter) one-shot answer.
    if (cancelled()) break;
    // Pick the alive reader with maximum marginal standalone weight.
    int v = -1;
    int vw = 0;
    for (int u = 0; u < n; ++u) {
      if (alive[static_cast<std::size_t>(u)] == 0) continue;
      const int w = committed.peekDelta(u);
      if (counting) ++peek_evals;
      if (w > vw) {
        vw = w;
        v = u;
      }
    }
    // No alive reader can add value: adding any subset of the remaining
    // readers is non-positive (marginal deltas are subadditive), stop.
    if (v < 0) break;
    ++stats_.picks;

    // Grow Γ_r until inequality (1) fails (or the cap / the component edge
    // is hit — once N stops growing, Γ stops improving and (1) fails with
    // ratio 1 < ρ anyway).
    std::vector<int> gamma = {v};  // Γ_0 = MWFS within {v}
    int gamma_w = vw;
    int rbar = 0;
    for (int r = 0; r < opt_.hop_cap; ++r) {
      const auto next_hood =
          graph::kHopNeighborhoodAlive(*graph_, v, r + 1, alive);
      // Same singleton shortcut as the lazy loop (identical stats bill).
      if (next_hood.size() <= 1) break;
      const BnbResult next =
          maxWeightFeasibleSubset(sys, next_hood, opt_.node_limit, committed,
                                  cancelToken());
      stats_.bnb_nodes += next.nodes;
      if (static_cast<double>(next.weight) <
          opt_.rho * static_cast<double>(gamma_w)) {
        break;  // first violation: keep Γ_r
      }
      gamma = next.members;
      gamma_w = next.weight;
      rbar = r + 1;
    }
    stats_.max_rbar = std::max(stats_.max_rbar, rbar);

    X.insert(X.end(), gamma.begin(), gamma.end());
    for (const int u : gamma) committed.push(u);

    // Remove N(v)^{r̄+1}; guarantees feasibility of the union across picks.
    for (const int u :
         graph::kHopNeighborhoodAlive(*graph_, v, rbar + 1, alive)) {
      alive[static_cast<std::size_t>(u)] = 0;
    }
  }

  std::sort(X.begin(), X.end());
  recordScheduleMetrics(peek_evals + stats_.bnb_nodes, stats_.picks);
  {
    obs::CostBill b;
    b.weight_evals = peek_evals + committed.ops();
    b.csr_rows = b.weight_evals;
    b.bnb_nodes = stats_.bnb_nodes;
    chargeCost("alg2.reference", b);
  }
  return {X, sys.weight(X)};
}

}  // namespace rfid::sched
