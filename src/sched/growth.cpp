#include "sched/growth.h"

#include <algorithm>
#include <cassert>

#include "core/weight.h"
#include "graph/traversal.h"
#include "sched/exact.h"

namespace rfid::sched {

GrowthScheduler::GrowthScheduler(const graph::InterferenceGraph& g,
                                 GrowthOptions opt)
    : graph_(&g), opt_(opt) {
  assert(opt_.rho > 1.0 && "rho must exceed 1 for inequality (1) to bind");
  assert(opt_.hop_cap >= 0);
}

OneShotResult GrowthScheduler::schedule(const core::System& sys) {
  assert(graph_->numNodes() == sys.numReaders());
  const int n = sys.numReaders();
  stats_ = {};

  std::vector<char> alive(static_cast<std::size_t>(n), 1);
  std::vector<int> X;
  // Tracks X's coverage so picks and local MWFS are scored *marginally*:
  // readers from different (graph-independent) regions can still share
  // interrogation area and cancel each other's tags through RRc, which the
  // paper's weight definition charges but pure local scoring would miss.
  core::WeightEvaluator committed(sys);

  // Work counting only when a registry is attached, so the detached hot
  // loop is byte-for-byte the uninstrumented one.
  const bool counting = metrics() != nullptr;
  std::int64_t peek_evals = 0;
  while (true) {
    // Cancellation checkpoint: one poll per coordinator pick.  X is
    // feasible after every completed pick, so the partial set is a valid
    // (if lighter) one-shot answer.
    if (cancelled()) break;
    // Pick the alive reader with maximum marginal standalone weight.
    int v = -1;
    int vw = 0;
    for (int u = 0; u < n; ++u) {
      if (alive[static_cast<std::size_t>(u)] == 0) continue;
      const int w = committed.peekDelta(u);
      if (counting) ++peek_evals;
      if (w > vw) {
        vw = w;
        v = u;
      }
    }
    // No alive reader can add value: adding any subset of the remaining
    // readers is non-positive (marginal deltas are subadditive), stop.
    if (v < 0) break;
    ++stats_.picks;

    // Grow Γ_r until inequality (1) fails (or the cap / the component edge
    // is hit — once N stops growing, Γ stops improving and (1) fails with
    // ratio 1 < ρ anyway).
    std::vector<int> gamma = {v};  // Γ_0 = MWFS within {v}
    int gamma_w = vw;
    int rbar = 0;
    for (int r = 0; r < opt_.hop_cap; ++r) {
      const auto next_hood =
          graph::kHopNeighborhoodAlive(*graph_, v, r + 1, alive);
      const BnbResult next =
          maxWeightFeasibleSubset(sys, next_hood, opt_.node_limit,
                                  committed.members(), cancelToken());
      stats_.bnb_nodes += next.nodes;
      if (static_cast<double>(next.weight) <
          opt_.rho * static_cast<double>(gamma_w)) {
        break;  // first violation: keep Γ_r
      }
      gamma = next.members;
      gamma_w = next.weight;
      rbar = r + 1;
    }
    stats_.max_rbar = std::max(stats_.max_rbar, rbar);

    X.insert(X.end(), gamma.begin(), gamma.end());
    for (const int u : gamma) committed.push(u);

    // Remove N(v)^{r̄+1}; guarantees feasibility of the union across picks.
    for (const int u :
         graph::kHopNeighborhoodAlive(*graph_, v, rbar + 1, alive)) {
      alive[static_cast<std::size_t>(u)] = 0;
    }
  }

  std::sort(X.begin(), X.end());
  recordScheduleMetrics(peek_evals + stats_.bnb_nodes, stats_.picks);
  return {X, sys.weight(X)};
}

}  // namespace rfid::sched
