// exact.h — exact Maximum Weighted Feasible Scheduling set solvers.
//
// The paper's approximation guarantees (Theorems 2, 4, 6) are stated against
// the optimum w(OPT).  This module computes that optimum by branch & bound
// so the tests can check the guarantees empirically and the ablations can
// report true approximation ratios on small instances.  It is also the
// engine behind the *local* MWFS computations of Algorithms 2 and 3: their
// neighborhoods are small (growth-bounded), so exact local search is exactly
// what the paper prescribes ("compute MWFS ... by enumeration", §V-B).
//
// Weight is sub-additive (RRc), so this is not a plain max-weight
// independent-set instance: the objective is evaluated by live coverage
// multiplicities (core::WeightEvaluator semantics).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/system.h"
#include "sched/scheduler.h"

namespace rfid::core {
class WeightEvaluator;
}

namespace rfid::sched {

/// A self-contained local MWFS instance over `n = adj.size()` candidates.
///
/// Used directly by the distributed algorithm, whose coordinators only know
/// what arrived in messages: local conflict edges and per-candidate unread
/// tag-id lists.  Tag ids are arbitrary non-negative ints, shared across
/// candidates (shared ids model RRc overlap).
struct LocalProblem {
  /// adj[i] = conflicting candidates (must not be co-selected), ascending.
  std::vector<std::vector<int>> adj;
  /// coverage[i] = ids of *unread* tags inside candidate i's interrogation
  /// region.
  std::vector<std::vector<int>> coverage;
  /// Tags already covered by readers selected *outside* this subproblem
  /// (repeat an id to record multiplicity).  The solver then maximizes the
  /// *marginal* weight: covering a preloaded tag once more removes it from
  /// the outside context's well-covered set (RRc), which scores −1, and
  /// never +1.  An empty preload reduces to plain MWFS.
  std::vector<int> preload;
};

/// Reusable allocation arena for the hot local-MWFS path.  Algorithm 2
/// solves one tiny subproblem per pick (thousands per covering schedule, a
/// handful of candidates each), where heap churn for the problem rows and
/// search buffers costs more than the search itself.  Passing the same
/// scratch across calls keeps every buffer's capacity; results are
/// bit-identical with and without one (the search never reads stale data).
struct BnbScratch {
  LocalProblem problem;  // assembled instance; rows keep capacity
  std::vector<int> ids;  // densification: sorted unique tag ids
  std::vector<int> count;
  std::vector<int> conflict;
  std::vector<int> order;
  std::vector<int> chosen;
  std::vector<int> best;
  std::vector<std::vector<int>> coverage;  // densified candidate rows
};

struct BnbResult {
  /// Chosen candidates (local indices for solveLocal, reader indices for
  /// the System overloads), ascending.
  std::vector<int> members;
  int weight = 0;
  /// Search nodes expanded.
  std::int64_t nodes = 0;
  /// True iff the search ran to completion (false = node budget hit and the
  /// result is only the best found so far).
  bool optimal = true;
};

/// Exact MWFS on a LocalProblem via branch & bound.
/// Bound: current weight + Σ exclusive-coverage upper bounds of remaining
/// selectable candidates.  `node_limit` caps the search (≤0 = unlimited).
/// `cancel` (optional) is polled every few thousand nodes; a fired token
/// ends the search through the same best-so-far path as the node budget
/// (`optimal` comes back false).
BnbResult solveLocal(const LocalProblem& problem, std::int64_t node_limit = 0,
                     const ckpt::CancelToken* cancel = nullptr,
                     BnbScratch* scratch = nullptr);

/// Exact MWFS restricted to `candidates` (reader indices) of `sys`,
/// scored against the system's current unread set.  When `committed` is
/// non-empty, the result maximizes the weight *marginal* to those already
/// selected readers (their unread coverage is preloaded), which is how the
/// growth algorithms keep later picks from silently cancelling earlier
/// picks' tags through RRc.
BnbResult maxWeightFeasibleSubset(const core::System& sys,
                                  std::span<const int> candidates,
                                  std::int64_t node_limit = 0,
                                  std::span<const int> committed = {},
                                  const ckpt::CancelToken* cancel = nullptr,
                                  BnbScratch* scratch = nullptr);

/// Same solve, but the committed context arrives as the live WeightEvaluator
/// maintaining it: the preload multiplicities are read off
/// `committed.multiplicity(t)` for exactly the candidate-covered tags,
/// instead of re-walking every committed member's coverage row per call
/// (which is quadratic in picks over a growth run).  Bit-identical search
/// — same counts, same bounds, same nodes — at O(candidate coverage) setup.
BnbResult maxWeightFeasibleSubset(const core::System& sys,
                                  std::span<const int> candidates,
                                  std::int64_t node_limit,
                                  const core::WeightEvaluator& committed,
                                  const ckpt::CancelToken* cancel = nullptr,
                                  BnbScratch* scratch = nullptr);

/// Exact one-shot scheduler over all readers.  Exponential in the worst
/// case — intended for tests and small-n ablations, not the paper-scale
/// sweeps.
class ExactScheduler final : public OneShotScheduler {
 public:
  explicit ExactScheduler(std::int64_t node_limit = 0)
      : node_limit_(node_limit) {}

  std::string name() const override { return "Exact"; }
  OneShotResult schedule(const core::System& sys) override;

 private:
  std::int64_t node_limit_;
};

}  // namespace rfid::sched
