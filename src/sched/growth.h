// growth.h — Algorithm 2: centralized reader activation scheduling without
// location information (paper §V-A).
//
// The scheduler sees only the interference graph (Definition 7) and
// per-reader tag coverage — never coordinates.  It exploits the
// growth-bounded property of geometric interference graphs:
//
//   repeat
//     pick alive reader v maximizing w({v});
//     grow r = 0, 1, 2, … computing Γ_r(v) = exact MWFS inside N(v)^r,
//       while w(Γ_{r+1}) ≥ ρ·w(Γ_r)                     (inequality (1))
//     X ← X ∪ Γ_r̄(v);  remove N(v)^{r̄+1} from the graph;
//   until no alive reader can serve a tag.
//
// Removing the (r̄+1)-hop neighborhood (not just N^r̄) guarantees the union
// of the per-region Γ's stays feasible (members of different regions are ≥2
// hops apart, hence non-adjacent).  Theorem 3 bounds r̄ by a constant c(ρ);
// `hop_cap` is the explicit safety net for that constant, and the observed
// r̄ distribution is exported for the ablation bench.
//
// Hot-path structure (docs/performance.md): by default the coordinator pick
// runs through core::LazyGreedyQueue instead of rescanning every reader's
// marginal delta each round, standalone weights are carried across MCS slots
// by core::StandaloneWeightCache, and the readers are partitioned into
// *interaction components* — connected components of the union of the
// interference graph and the shares-a-tag relation.  Committing a reader
// can change nothing outside its component (no shared tags ⇒ no delta
// interaction; no edges ⇒ kills stay inside), so the components are
// independent local subproblems solved in parallel and reduced in component
// order.  The schedule produced is bit-identical to the reference scan for
// every thread count; `lazy_selection = false` runs the original loop.
#pragma once

#include <cstdint>
#include <vector>

#include "core/weight.h"
#include "graph/interference_graph.h"
#include "sched/scheduler.h"

namespace rfid::sched {

struct GrowthOptions {
  /// ρ = 1 + ε of inequality (1).  Theorem 4: the result is a 1/ρ
  /// approximation of the optimum.  Must be > 1.
  double rho = 1.25;
  /// Hard cap on the neighborhood radius r̄ (the paper's constant c(ρ)).
  int hop_cap = 8;
  /// Node budget per local exact MWFS (0 = unlimited).
  std::int64_t node_limit = 4'000'000;
  /// Component-partitioned lazy-greedy pick loop (default) vs the reference
  /// full-scan loop.  Both produce the identical schedule; the reference
  /// path exists as the equivalence-test oracle.
  bool lazy_selection = true;
  /// Threads for the independent interaction components (0 = hardware
  /// concurrency; effective only with lazy_selection).  Any value yields
  /// the same schedule.
  int num_threads = 0;
};

class GrowthScheduler final : public OneShotScheduler {
 public:
  /// `g` must be the interference graph of the system passed to schedule().
  GrowthScheduler(const graph::InterferenceGraph& g, GrowthOptions opt = {});

  std::string name() const override { return "Alg2"; }
  OneShotResult schedule(const core::System& sys) override;

  /// Diagnostics from the most recent schedule() call.
  struct Stats {
    int picks = 0;       // coordinator rounds executed
    int max_rbar = 0;    // largest neighborhood radius reached
    std::int64_t bnb_nodes = 0;  // total branch & bound nodes expanded
  };
  const Stats& lastStats() const { return stats_; }

 private:
  struct Worker;
  struct CompResult {
    std::vector<int> members;  // picked readers, in pick order
    Stats stats;
    std::int64_t work = 0;  // lazy-queue work units spent on the component
    obs::CostBill bill;     // deterministic work, reduced in component order
  };

  OneShotResult scheduleReference(const core::System& sys);
  void ensureComponents(const core::System& sys);
  void runComponent(const core::System& sys, std::span<const int> comp,
                    Worker& worker, CompResult& out) const;

  const graph::InterferenceGraph* graph_;
  GrowthOptions opt_;
  Stats stats_;
  // Caches over the static structure, keyed by System::instanceId plus the
  // structural epoch: tag churn (streaming mode) rewires the shares-a-tag
  // relation in place, so components must be recut after any mutation.
  std::uint64_t groups_sys_id_ = 0;
  std::uint64_t groups_epoch_ = 0;
  std::vector<std::vector<int>> groups_;  // ordered by smallest member
  core::StandaloneWeightCache standalone_;
};

}  // namespace rfid::sched
