// pruning.h — marginal-pruning overlay for weight-blind schedulers.
//
// Colorwave and HiQ schedule *air time*: their slot proposals contain
// readers that contribute nothing (or negatively, through RRc) to the
// current slot's weight.  This wrapper takes any scheduler's proposal and
// greedily re-selects within it by positive marginal weight — the cheapest
// possible injection of Definition-3 awareness, requiring only the tag
// counts a reader already learns from its own read attempts.
//
// The ablation question it answers (bench/baselines_extra): how much of the
// gap between the paper's algorithms and the baselines is *weight
// awareness*, and how much is scheduling structure?  Pruning closes part of
// the first and none of the second.
#pragma once

#include <memory>

#include "sched/scheduler.h"

namespace rfid::sched {

class PruningWrapper final : public OneShotScheduler {
 public:
  /// Takes ownership of the wrapped scheduler.
  explicit PruningWrapper(std::unique_ptr<OneShotScheduler> inner);

  std::string name() const override { return inner_->name() + "+prune"; }

  /// Asks `inner` for a proposal, then greedily keeps the subset with
  /// positive marginal weight (largest-gain first, independence preserved
  /// among kept members).  Never returns a worse set than the best single
  /// member of the proposal.
  OneShotResult schedule(const core::System& sys) override;

 private:
  std::unique_ptr<OneShotScheduler> inner_;
};

}  // namespace rfid::sched
