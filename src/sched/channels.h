// channels.h — multi-channel reader scheduling (paper §VII discussion).
//
// The related-work section discusses two channel-based escapes from RTc:
// the EPCglobal Gen-2 *dense reading mode* (tag responses on different
// spectral channels than readers) and the k-coloring heuristic of [13]
// (k = number of available channels).  With C channels, a slot activates a
// set of readers *plus a channel assignment*; reader–tag collisions only
// occur between readers sharing a channel, while reader–reader collisions
// at tags persist across channels (a passive tag is frequency-dumb on the
// downlink it backscatters).
//
// Channel-feasibility of (X, channel) therefore means: same-channel pairs
// must be independent — i.e. X's interference subgraph is properly colored
// by the assignment.  C = 1 reduces exactly to Definition 2.
#pragma once

#include <span>
#include <vector>

#include "core/system.h"
#include "sched/scheduler.h"

namespace rfid::sched {

/// A one-shot decision with channels.
struct ChanneledResult {
  std::vector<int> readers;   // ascending
  std::vector<int> channel;   // channel[i] for readers[i], in [0, C)
  int weight = 0;
};

/// True iff every same-channel pair in (readers, channel) is independent.
bool isChannelFeasible(const core::System& sys, std::span<const int> readers,
                       std::span<const int> channel);

/// Definition-1 semantics generalized to channels: a reader is an RTc
/// victim only if it sits inside the interference disk of another active
/// reader *on its own channel*; a tag is lost to RRc when ≥2 active readers
/// (any channels) cover it.  Only unread tags are reported.
std::vector<int> wellCoveredTagsChanneled(const core::System& sys,
                                          std::span<const int> readers,
                                          std::span<const int> channel);

/// Interface for schedulers that decide (readers, channels) jointly.
class ChanneledScheduler {
 public:
  virtual ~ChanneledScheduler() = default;
  virtual std::string name() const = 0;
  virtual ChanneledResult scheduleChanneled(const core::System& sys) = 0;
};

struct ChannelOptions {
  int num_channels = 2;
};

/// Greedy channel-aware scheduler: repeatedly adds the reader with the
/// largest positive marginal weight that still fits on *some* channel
/// (first-fit).  With C = 1 this is exactly the GHC baseline; more channels
/// admit interfering readers on separate frequencies, so per-slot weight is
/// non-decreasing in C until RRc becomes the binding constraint.
class MultiChannelScheduler final : public OneShotScheduler,
                                    public ChanneledScheduler {
 public:
  explicit MultiChannelScheduler(ChannelOptions opt = {});

  std::string name() const override;
  OneShotResult schedule(const core::System& sys) override;

  /// Like schedule() but keeps the channel assignment.
  ChanneledResult scheduleChanneled(const core::System& sys) override;

 private:
  ChannelOptions opt_;
};

/// MCS driver for channel schedules: same greedy slot loop as
/// runCoveringSchedule, refereed by wellCoveredTagsChanneled.
struct ChanneledMcsResult {
  int slots = 0;
  int tags_read = 0;
  bool completed = false;
};
ChanneledMcsResult runChanneledCoveringSchedule(core::System& sys,
                                                ChanneledScheduler& sched,
                                                int max_slots = 100000);

}  // namespace rfid::sched
