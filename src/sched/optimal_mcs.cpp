#include "sched/optimal_mcs.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rfid::sched {

namespace {

/// Enumerates every feasible scheduling set's "exactly-once coverage" mask
/// over the coverable unread tags.  The mask is independent of the unread
/// state: activating X always serves (mask ∩ current-unread).
class MaskCollector {
 public:
  MaskCollector(const core::System& sys, const std::vector<int>& tag_bit)
      : sys_(sys), tag_bit_(tag_bit) {
    for (int v = 0; v < sys.numReaders(); ++v) {
      if (sys.singleWeight(v) > 0) useful_.push_back(v);
    }
    count_.assign(tag_bit.size(), 0);
  }

  std::vector<std::uint32_t> collect() {
    recurse(0);
    // Dominance pruning: a mask contained in another is never preferable.
    std::sort(masks_.begin(), masks_.end(),
              [](std::uint32_t a, std::uint32_t b) {
                return std::popcount(a) > std::popcount(b);
              });
    std::vector<std::uint32_t> maximal;
    for (const std::uint32_t m : masks_) {
      if (m == 0) continue;
      bool dominated = false;
      for (const std::uint32_t big : maximal) {
        if ((m & big) == m) { dominated = true; break; }
      }
      if (!dominated) maximal.push_back(m);
    }
    return maximal;
  }

 private:
  void recurse(std::size_t pos) {
    masks_.push_back(currentMask());
    for (std::size_t i = pos; i < useful_.size(); ++i) {
      const int v = useful_[i];
      bool ok = true;
      for (const int u : chosen_) {
        if (!sys_.independent(u, v)) { ok = false; break; }
      }
      if (!ok) continue;
      push(v);
      recurse(i + 1);
      pop(v);
    }
  }

  std::uint32_t currentMask() const {
    std::uint32_t m = 0;
    for (std::size_t b = 0; b < count_.size(); ++b) {
      if (count_[b] == 1) m |= (1u << b);
    }
    return m;
  }

  void push(int v) {
    for (const int t : sys_.coverage(v)) {
      const int bit = tag_bit_[static_cast<std::size_t>(t)];
      if (bit >= 0) ++count_[static_cast<std::size_t>(bit)];
    }
    chosen_.push_back(v);
  }

  void pop(int v) {
    for (const int t : sys_.coverage(v)) {
      const int bit = tag_bit_[static_cast<std::size_t>(t)];
      if (bit >= 0) --count_[static_cast<std::size_t>(bit)];
    }
    chosen_.pop_back();
  }

  const core::System& sys_;
  const std::vector<int>& tag_bit_;  // tag index -> bit (or -1)
  std::vector<int> useful_;
  std::vector<int> chosen_;
  std::vector<int> count_;
  std::vector<std::uint32_t> masks_;
};

}  // namespace

OptimalMcsResult optimalCoveringScheduleSize(const core::System& sys,
                                             std::int64_t max_states) {
  if (max_states <= 0) max_states = 4'000'000;
  assert(sys.numReaders() <= 20 && "exact MCS is for tiny instances");

  // Bit-index the coverable unread tags.
  std::vector<int> tag_bit(static_cast<std::size_t>(sys.numTags()), -1);
  int bits = 0;
  for (int t = 0; t < sys.numTags(); ++t) {
    if (!sys.isRead(t) && !sys.coverers(t).empty()) {
      tag_bit[static_cast<std::size_t>(t)] = bits++;
    }
  }
  assert(bits <= 22 && "exact MCS needs <= 22 coverable tags");
  OptimalMcsResult res;
  if (bits == 0) {
    res.slots = 0;
    return res;
  }

  MaskCollector collector(sys, tag_bit);
  const std::vector<std::uint32_t> moves = collector.collect();
  const std::uint32_t full = bits == 32 ? ~0u : ((1u << bits) - 1);

  // BFS over unread masks.
  std::unordered_map<std::uint32_t, int> depth;
  std::queue<std::uint32_t> frontier;
  depth.emplace(full, 0);
  frontier.push(full);
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    const int d = depth.at(u);
    for (const std::uint32_t m : moves) {
      const std::uint32_t next = u & ~m;
      if (next == u) continue;
      ++res.states;
      if (res.states > max_states) return res;  // slots stays -1
      if (depth.find(next) != depth.end()) continue;
      if (next == 0) {
        res.slots = d + 1;
        return res;
      }
      depth.emplace(next, d + 1);
      frontier.push(next);
    }
  }
  // Unreachable in principle never happens — the singleton {v} serves all
  // of v's coverage — so arriving here means the state budget cut BFS off.
  return res;
}

}  // namespace rfid::sched
