#include "sched/channels.h"

#include <algorithm>
#include <cassert>

#include "core/weight.h"

namespace rfid::sched {

bool isChannelFeasible(const core::System& sys, std::span<const int> readers,
                       std::span<const int> channel) {
  assert(readers.size() == channel.size());
  for (std::size_t i = 0; i < readers.size(); ++i) {
    for (std::size_t j = i + 1; j < readers.size(); ++j) {
      if (readers[i] == readers[j]) return false;
      if (channel[i] == channel[j] && !sys.independent(readers[i], readers[j])) {
        return false;
      }
    }
  }
  return true;
}

std::vector<int> wellCoveredTagsChanneled(const core::System& sys,
                                          std::span<const int> readers,
                                          std::span<const int> channel) {
  assert(readers.size() == channel.size());
  // RTc victims: inside a same-channel active reader's interference disk.
  std::vector<char> victim(readers.size(), 0);
  for (std::size_t i = 0; i < readers.size(); ++i) {
    for (std::size_t j = 0; j < readers.size(); ++j) {
      if (i == j || channel[i] != channel[j]) continue;
      const core::Reader& a = sys.reader(readers[i]);
      const core::Reader& b = sys.reader(readers[j]);
      const double rj = b.interference_radius;
      if (geom::dist2(a.pos, b.pos) <= rj * rj) {
        victim[i] = 1;
        break;
      }
    }
  }
  // Coverage multiplicity across ALL active readers (RRc is channel-blind).
  std::vector<int> count(static_cast<std::size_t>(sys.numTags()), 0);
  for (const int v : readers) {
    for (const int t : sys.coverage(v)) ++count[static_cast<std::size_t>(t)];
  }
  std::vector<int> served;
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (victim[i] != 0) continue;
    for (const int t : sys.coverage(readers[i])) {
      if (count[static_cast<std::size_t>(t)] == 1 && !sys.isRead(t)) served.push_back(t);
    }
  }
  std::sort(served.begin(), served.end());
  return served;
}

MultiChannelScheduler::MultiChannelScheduler(ChannelOptions opt) : opt_(opt) {
  assert(opt_.num_channels >= 1);
}

std::string MultiChannelScheduler::name() const {
  return "MC" + std::to_string(opt_.num_channels);
}

ChanneledResult MultiChannelScheduler::scheduleChanneled(
    const core::System& sys) {
  const int n = sys.numReaders();
  core::WeightEvaluator eval(sys);
  std::vector<int> chosen;
  std::vector<int> chan;

  while (true) {
    // Cancellation checkpoint: one poll per greedy addition; the partial
    // channel assignment is feasible after every completed addition.
    if (cancelled()) break;
    int best = -1;
    int best_delta = 0;
    int best_channel = -1;
    for (int v = 0; v < n; ++v) {
      if (std::find(chosen.begin(), chosen.end(), v) != chosen.end()) continue;
      // First-fit channel: one with no conflicting co-channel member.
      int fit = -1;
      for (int c = 0; c < opt_.num_channels && fit < 0; ++c) {
        bool ok = true;
        for (std::size_t i = 0; i < chosen.size(); ++i) {
          if (chan[i] == c && !sys.independent(chosen[i], v)) {
            ok = false;
            break;
          }
        }
        if (ok) fit = c;
      }
      if (fit < 0) continue;
      const int delta = eval.peekDelta(v);
      if (delta > best_delta) {
        best_delta = delta;
        best = v;
        best_channel = fit;
      }
    }
    if (best < 0) break;
    eval.push(best);
    chosen.push_back(best);
    chan.push_back(best_channel);
  }

  ChanneledResult res;
  // Sort by reader index, carrying channels along.
  std::vector<std::size_t> order(chosen.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&chosen](std::size_t a, std::size_t b) {
    return chosen[a] < chosen[b];
  });
  for (const std::size_t i : order) {
    res.readers.push_back(chosen[i]);
    res.channel.push_back(chan[i]);
  }
  res.weight = static_cast<int>(
      wellCoveredTagsChanneled(sys, res.readers, res.channel).size());
  return res;
}

OneShotResult MultiChannelScheduler::schedule(const core::System& sys) {
  const ChanneledResult res = scheduleChanneled(sys);
  return {res.readers, res.weight};
}

ChanneledMcsResult runChanneledCoveringSchedule(core::System& sys,
                                                ChanneledScheduler& sched,
                                                int max_slots) {
  ChanneledMcsResult res;
  int stall = 0;
  while (sys.unreadCoverableCount() > 0 && res.slots < max_slots) {
    const ChanneledResult one = sched.scheduleChanneled(sys);
    const std::vector<int> served =
        wellCoveredTagsChanneled(sys, one.readers, one.channel);
    sys.markRead(served);
    ++res.slots;
    res.tags_read += static_cast<int>(served.size());
    if (served.empty()) {
      if (++stall >= 500) break;
    } else {
      stall = 0;
    }
  }
  res.completed = sys.unreadCoverableCount() == 0;
  return res;
}

}  // namespace rfid::sched
