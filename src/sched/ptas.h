// ptas.h — Algorithm 1: PTAS for MWFS with location information (paper §IV).
//
// Erlebach–Jansen–Seidel-style hierarchical shifted-grid dynamic program,
// generalized to per-reader radii and the paper's sub-additive weight:
//
//  1. Scale all interference radii so the largest is 1/2; partition disks
//     into levels (geom::ShiftedGrid::levelOf).
//  2. For every shift (r, s) ∈ [0,k)²: drop disks that hit a kept grid line
//     of their level ("non-survivors"); every surviving disk lies strictly
//     inside one j-square.  Theorem 2: some shift retains at least a
//     (1−1/k)² fraction of the optimum's weight.
//  3. DP over the square forest, finest level upward:  MWFS(S, I) = best
//     feasible set of survivors inside S given boundary context I (already
//     chosen coarser disks intersecting S), computed by enumerating the
//     ≤ Λ same-level survivors chosen inside S and recursing into the
//     (k+1)² children with the context restricted to each child's box.
//  4. Because w is sub-additive (w(X₁∪X₂) may undercut w(X₁)+w(X₂) — the
//     complication §IV calls out), candidates are ranked by *marginal*
//     weight w(X ∪ I) − w(I) evaluated exactly by the System referee.
//
// Feasibility never needs re-checking at combine time: chosen disks are
// strictly inside disjoint child boxes or independent of every context disk
// by construction (see ptas.cpp's combine step for the containment
// argument).
#pragma once

#include <cstdint>

#include "sched/scheduler.h"

namespace rfid::sched {

struct PtasOptions {
  /// Shifting parameter k ≥ 2.  Quality (1−1/k)² at cost k² shifts.
  /// k = 4 keeps ≥ 9/16 of the optimum in theory and ≳ 95% in practice
  /// (bench/ablation_ptas_k), which is where Algorithm 1 starts to beat
  /// the location-free algorithms as the paper's Figures 6–9 report.
  int k = 4;
  /// Λ: maximum number of same-level disks selected inside one square that
  /// still has children (leaf squares are solved exactly by branch & bound,
  /// with no Λ truncation).  The paper's packing argument bounds the useful
  /// Λ by a constant in k; raising it past ~6 buys little and costs
  /// exponentially.
  int lambda = 5;
  /// Guard on the per-square candidate pool |Y| before the Λ-bounded
  /// enumeration in *non-leaf* squares: if such a square holds more
  /// survivors, only the top `square_candidate_cap` by standalone weight
  /// are enumerated.  Leaf squares are exempt — they go through branch &
  /// bound on the full pool, bounded by `leaf_node_limit` instead.
  int square_candidate_cap = 24;
  /// Internal squares whose pool exceeds this switch from the joint
  /// (children-coupled) Λ-enumeration to *sequential conditioning*: solve
  /// the local pool by branch & bound first, then solve each child with
  /// the local picks added to its context.  Joint enumeration is exact but
  /// exponential in the pool; sequential is the standard
  /// coarse-levels-first approximation and keeps big single-level pools
  /// with a few fine-level stragglers tractable.
  int joint_enumeration_cap = 12;
  /// Branch & bound node budget per leaf square (0 = unlimited).  At the
  /// paper's scale a leaf holds ≤ 50 disks and the search finishes well
  /// inside the budget; beyond ~100 readers per leaf the search degrades
  /// gracefully to best-found-so-far (the include-first exploration order
  /// makes early incumbents greedy-or-better).  Remember the budget is
  /// paid per shift — k² times per schedule() call.
  std::int64_t leaf_node_limit = 1'500'000;
  /// Textbook mode: a disk that crosses a kept grid line of its level is
  /// *discarded* for that shift, exactly as §IV prescribes (the Theorem 2
  /// analysis charges the loss to the best shift).  The default (false)
  /// never discards: a crossing disk is homed at the smallest enclosing
  /// square of a coarser level (or a virtual root spanning the plane),
  /// where it simply participates in that square's selection.  Promotion
  /// preserves both DP invariants — homed disks stay strictly inside their
  /// square, and context restriction stays lossless — so the result can
  /// only improve; the ablation bench compares both modes.
  bool strict_survive = false;
  /// Solve the k² grid shifts in parallel (they are independent given the
  /// frozen read-state; each worker evaluates weights through its own
  /// scratch).  The per-shift results are reduced in shift order, so the
  /// chosen set, the best shift, and the stats are identical to the
  /// sequential loop for any thread count.  `false` forces one thread (the
  /// equivalence-test oracle).
  bool parallel_shifts = true;
  /// Threads for the shift fan-out (0 = hardware concurrency).
  int num_threads = 0;
};

class PtasScheduler final : public OneShotScheduler {
 public:
  explicit PtasScheduler(PtasOptions opt = {});

  std::string name() const override { return "Alg1"; }
  OneShotResult schedule(const core::System& sys) override;

  /// Diagnostics from the most recent schedule() call.
  struct Stats {
    int best_shift_r = 0;
    int best_shift_s = 0;
    int levels = 0;           // number of radius levels in play
    std::int64_t dp_entries = 0;   // memoized (square, context) states
    std::int64_t weight_evals = 0; // exact weight evaluations performed
  };
  const Stats& lastStats() const { return stats_; }

 private:
  PtasOptions opt_;
  Stats stats_;
};

}  // namespace rfid::sched
