#include "sched/exact.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/weight.h"
#include "obs/timer.h"

namespace rfid::sched {

namespace {

/// Branch & bound over a LocalProblem with dense tag ids.  All working
/// vectors live in a caller-provided BnbScratch so the hot local-solve path
/// (one tiny instance per Algorithm-2 pick) reuses capacity across calls;
/// every buffer is fully re-initialized here, so a reused scratch yields
/// bit-identical searches.
class Search {
 public:
  /// `preload_counts`, when non-null, supplies the committed-context
  /// multiplicities directly (count of committed coverers per tag id) and
  /// p.preload is ignored; the seeded counters are identical to walking a
  /// preload list holding each tag once per committed coverer.
  Search(const LocalProblem& p, std::int64_t node_limit,
         const ckpt::CancelToken* cancel, BnbScratch& s,
         const core::WeightEvaluator* preload_counts = nullptr)
      : p_(p), node_limit_(node_limit), cancel_(cancel), s_(s) {
    const int n = static_cast<int>(p.adj.size());
    // Densify tag ids for O(1) multiplicity counters.  Dense ids feed only
    // per-tag counters, so any bijection gives the same search; sort-and-
    // unique over the gathered candidate coverage beats a hash map here —
    // the id universe is small, contiguous passes are cache-friendly, and
    // lookups become branch-predictable binary searches.
    std::vector<int>& ids = s_.ids;
    ids.clear();
    for (int i = 0; i < n; ++i) {
      const auto& cov = p.coverage[static_cast<std::size_t>(i)];
      ids.insert(ids.end(), cov.begin(), cov.end());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    const auto dense = [&ids](int t) {
      return static_cast<int>(std::lower_bound(ids.begin(), ids.end(), t) -
                              ids.begin());
    };
    if (s_.coverage.size() < static_cast<std::size_t>(n)) {
      s_.coverage.resize(static_cast<std::size_t>(n));
    }
    for (int i = 0; i < n; ++i) {
      auto& cov = s_.coverage[static_cast<std::size_t>(i)];
      const auto& src = p.coverage[static_cast<std::size_t>(i)];
      cov.clear();
      for (const int t : src) cov.push_back(dense(t));
    }
    s_.count.assign(ids.size(), 0);
    // Preloaded context coverage: multiplicities the outside world already
    // holds on these tags.  Ids that no candidate covers are irrelevant.
    if (preload_counts != nullptr) {
      for (std::size_t d = 0; d < ids.size(); ++d) {
        s_.count[d] = preload_counts->multiplicity(ids[d]);
      }
    } else {
      for (const int t : p.preload) {
        const int d = dense(t);
        if (static_cast<std::size_t>(d) < ids.size() &&
            ids[static_cast<std::size_t>(d)] == t) {
          ++s_.count[static_cast<std::size_t>(d)];
        }
      }
    }
    for (const int c : s_.count) unclaimed_ += (c == 0);
    s_.conflict.assign(static_cast<std::size_t>(n), 0);

    // Explore high-coverage candidates first: better incumbents earlier,
    // tighter bounds.
    s_.order.resize(static_cast<std::size_t>(n));
    std::iota(s_.order.begin(), s_.order.end(), 0);
    std::stable_sort(s_.order.begin(), s_.order.end(), [this](int a, int b) {
      return s_.coverage[static_cast<std::size_t>(a)].size() >
             s_.coverage[static_cast<std::size_t>(b)].size();
    });
    s_.chosen.clear();
    s_.best.clear();
  }

  BnbResult run() {
    recurse(0);
    std::sort(s_.best.begin(), s_.best.end());
    return {s_.best, best_weight_, nodes_, !budget_hit_};
  }

 private:
  int pushCandidate(int c) {
    int delta = 0;
    for (const int t : s_.coverage[static_cast<std::size_t>(c)]) {
      const int k = s_.count[static_cast<std::size_t>(t)]++;
      if (k == 0) {
        ++delta;
        --unclaimed_;
      } else if (k == 1) {
        --delta;
      }
    }
    for (const int u : p_.adj[static_cast<std::size_t>(c)]) ++s_.conflict[static_cast<std::size_t>(u)];
    s_.chosen.push_back(c);
    weight_ += delta;
    return delta;
  }

  void popCandidate() {
    const int c = s_.chosen.back();
    s_.chosen.pop_back();
    int delta = 0;
    for (const int t : s_.coverage[static_cast<std::size_t>(c)]) {
      const int k = --s_.count[static_cast<std::size_t>(t)];
      if (k == 0) {
        --delta;
        ++unclaimed_;
      } else if (k == 1) {
        ++delta;
      }
    }
    for (const int u : p_.adj[static_cast<std::size_t>(c)]) --s_.conflict[static_cast<std::size_t>(u)];
    weight_ += delta;
  }

  /// Admissible bound, the tighter of two relaxations:
  ///  (a) adding candidate c raises the weight by at most |coverage(c)|,
  ///      summed over the still-selectable suffix;
  ///  (b) the weight can only grow by claiming currently-unclaimed tags,
  ///      so no completion gains more than `unclaimed_` in total.
  /// (b) is what kills the combinatorial tail on dense instances, where
  /// nearly every tag is already covered once and (a) stays huge.
  int suffixBound(std::size_t pos) const {
    int b = 0;
    for (std::size_t i = pos; i < s_.order.size(); ++i) {
      const int c = s_.order[i];
      if (s_.conflict[static_cast<std::size_t>(c)] == 0) {
        b += static_cast<int>(s_.coverage[static_cast<std::size_t>(c)].size());
        if (b >= unclaimed_) return unclaimed_;
      }
    }
    return b;
  }

  void recurse(std::size_t pos) {
    ++nodes_;
    if (node_limit_ > 0 && nodes_ > node_limit_) {
      budget_hit_ = true;
      return;
    }
    // Cooperative cancellation rides the node-budget path: poll every 4096
    // nodes (an atomic load is cheap, a steady_clock read is not) and bail
    // with the best incumbent found so far.
    if (cancel_ != nullptr && (nodes_ & 4095) == 0 && cancel_->cancelled()) {
      budget_hit_ = true;
      return;
    }
    if (weight_ > best_weight_) {
      best_weight_ = weight_;
      s_.best = s_.chosen;
    }
    if (pos >= s_.order.size()) return;
    if (weight_ + suffixBound(pos) <= best_weight_) return;  // prune

    const int c = s_.order[pos];
    if (s_.conflict[static_cast<std::size_t>(c)] == 0) {
      pushCandidate(c);
      recurse(pos + 1);
      popCandidate();
      if (budget_hit_) return;
    }
    recurse(pos + 1);
  }

  const LocalProblem& p_;
  std::int64_t node_limit_;
  const ckpt::CancelToken* cancel_;
  BnbScratch& s_;     // densified rows + counters + search stacks
  int unclaimed_ = 0;  // tags with multiplicity 0 (including preload)
  int weight_ = 0;
  int best_weight_ = 0;  // the empty set has weight 0
  std::int64_t nodes_ = 0;
  bool budget_hit_ = false;
};

}  // namespace

BnbResult solveLocal(const LocalProblem& problem, std::int64_t node_limit,
                     const ckpt::CancelToken* cancel, BnbScratch* scratch) {
  assert(problem.adj.size() == problem.coverage.size());
  BnbScratch local;  // empty vectors; a scratch-less call allocates as before
  Search s(problem, node_limit, cancel, scratch != nullptr ? *scratch : local);
  return s.run();
}

namespace {

/// Exact-sizes s.problem over `candidates` (solveLocal reads n off
/// adj.size()), clearing reused rows in place so capacity survives across
/// picks, and fills the conflict edges plus the unread coverage rows.
/// p.preload is untouched — each overload owns its preload semantics.
void assembleInstance(const core::System& sys, std::span<const int> candidates,
                      LocalProblem& p) {
  const int n = static_cast<int>(candidates.size());
  p.adj.resize(static_cast<std::size_t>(n));
  p.coverage.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    p.adj[static_cast<std::size_t>(i)].clear();
    p.coverage[static_cast<std::size_t>(i)].clear();
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!sys.independent(candidates[static_cast<std::size_t>(i)],
                           candidates[static_cast<std::size_t>(j)])) {
        p.adj[static_cast<std::size_t>(i)].push_back(j);
        p.adj[static_cast<std::size_t>(j)].push_back(i);
      }
    }
    for (const int t : sys.coverage(candidates[static_cast<std::size_t>(i)])) {
      if (!sys.isRead(t)) p.coverage[static_cast<std::size_t>(i)].push_back(t);
    }
  }
}

}  // namespace

BnbResult maxWeightFeasibleSubset(const core::System& sys,
                                  std::span<const int> candidates,
                                  std::int64_t node_limit,
                                  std::span<const int> committed,
                                  const ckpt::CancelToken* cancel,
                                  BnbScratch* scratch) {
  BnbScratch local;
  BnbScratch& s = scratch != nullptr ? *scratch : local;
  LocalProblem& p = s.problem;
  p.preload.clear();
  for (const int c : committed) {
    for (const int t : sys.coverage(c)) {
      if (!sys.isRead(t)) p.preload.push_back(t);
    }
  }
  assembleInstance(sys, candidates, p);
  BnbResult res = solveLocal(p, node_limit, cancel, &s);
  // Translate local indices back to reader indices.
  for (int& m : res.members) m = candidates[static_cast<std::size_t>(m)];
  std::sort(res.members.begin(), res.members.end());
  return res;
}

BnbResult maxWeightFeasibleSubset(const core::System& sys,
                                  std::span<const int> candidates,
                                  std::int64_t node_limit,
                                  const core::WeightEvaluator& committed,
                                  const ckpt::CancelToken* cancel,
                                  BnbScratch* scratch) {
  assert(&committed.system() == &sys);
  BnbScratch local;
  BnbScratch& s = scratch != nullptr ? *scratch : local;
  LocalProblem& p = s.problem;
  p.preload.clear();  // context multiplicities come straight off the evaluator
  assembleInstance(sys, candidates, p);
  Search search(p, node_limit, cancel, s, &committed);
  BnbResult res = search.run();
  for (int& m : res.members) m = candidates[static_cast<std::size_t>(m)];
  std::sort(res.members.begin(), res.members.end());
  return res;
}

OneShotResult ExactScheduler::schedule(const core::System& sys) {
  obs::ScopedTimer sched_span(trace() != nullptr ? metrics() : nullptr,
                              "exact.schedule_us", trace(),
                              "exact.schedule");
  std::vector<int> all(static_cast<std::size_t>(sys.numReaders()));
  std::iota(all.begin(), all.end(), 0);
  const BnbResult res =
      maxWeightFeasibleSubset(sys, all, node_limit_, {}, cancelToken());
  recordScheduleMetrics(res.nodes, sys.numReaders());
  {
    obs::CostBill b;
    b.bnb_nodes = res.nodes;
    b.csr_rows = static_cast<std::int64_t>(all.size());
    chargeCost("exact.bnb", b);
  }
  return {res.members, res.weight};
}

}  // namespace rfid::sched
