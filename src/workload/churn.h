// churn.h — tag churn traces for the streaming MCS driver (docs/streaming.md).
//
// A churn trace is the schedule of structural mutations a streaming run
// applies to its System: tags *arrive* at a position, *depart* from the
// field, or *move* to a new position, each stamped with the stream slot at
// which it happens.  Traces are first-class data — generated from a config
// (Poisson arrivals, optionally modulated by a two-state MMPP burst chain),
// saved/loaded as line-based CSV like deployments (workload/io.h), and
// hashed into the checkpoint identity so a resumed stream provably replays
// the exact same churn.
//
// Tag identity convention: depart/move events name tags by *System index*.
// The generator assumes arrivals are applied in trace order, so the k-th
// arrival receives index `initial_tags + k` — exactly what System::addTag
// returns when the driver feeds it the trace.  A loaded trace is validated
// structurally (sorted slots, finite coordinates, known kinds) but target
// liveness is only checkable at application time; the driver counts and
// skips events whose target is out of range or already departed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "geometry/vec2.h"

namespace rfid::workload {

enum class ChurnKind { kArrive, kDepart, kMove };

struct ChurnEvent {
  int slot = 0;                // stream slot at which the event applies
  ChurnKind kind = ChurnKind::kArrive;
  int tag = -1;                // target System index (depart/move); -1 arrive
  geom::Vec2 pos;              // field position (arrive/move)
  std::uint64_t epc = 0;       // EPC identifier (arrive only)

  bool operator==(const ChurnEvent&) const = default;
};

struct ChurnTrace {
  /// Sorted by slot (stable within a slot: application order matters for
  /// the index convention above).
  std::vector<ChurnEvent> events;
  /// One past the last slot carrying an event (0 for the empty trace).
  int horizon = 0;

  bool empty() const { return events.empty(); }
};

struct ChurnConfig {
  /// Mean arrivals per slot (Poisson; <= 0 disables arrivals).
  double arrival_rate = 5.0;
  /// Mean departures per slot among present tags (<= 0 disables).
  double depart_rate = 0.0;
  /// Mean moves per slot among present tags (<= 0 disables).
  double move_rate = 0.0;
  /// Slots during which churn occurs.
  int slots = 100;
  /// Positions are uniform over [0, region_side]².
  double region_side = 100.0;
  /// Two-state MMPP burst modulation: while the chain is in its burst
  /// state the arrival rate is multiplied by this factor.  1 disables the
  /// chain entirely (pure Poisson, bit-identical to pre-burst traces).
  double burst_multiplier = 1.0;
  /// Per-slot transition probabilities calm -> burst and burst -> calm.
  double burst_enter = 0.05;
  double burst_exit = 0.25;
};

/// Generates a trace deterministically from (cfg, initial_tags, seed).
/// `initial_tags` is the tag count of the System the trace will run
/// against — departures and moves sample uniformly from the present set.
ChurnTrace makeChurnTrace(const ChurnConfig& cfg, int initial_tags,
                          std::uint64_t seed);

/// CSV serialization:
///   # rfidsched churn v1
///   arrive,<slot>,<x>,<y>,<epc>
///   depart,<slot>,<tag>
///   move,<slot>,<tag>,<x>,<y>
void saveChurnTrace(std::ostream& os, const ChurnTrace& trace);
bool saveChurnTraceFile(const std::string& path, const ChurnTrace& trace);

/// Parses a trace; fails closed (nullopt + *err naming the line) on any
/// malformed record, non-finite coordinate, negative slot/tag, or
/// out-of-order slots.
std::optional<ChurnTrace> loadChurnTrace(std::istream& is,
                                         std::string* err = nullptr);
std::optional<ChurnTrace> loadChurnTraceFile(const std::string& path,
                                             std::string* err = nullptr);

/// FNV-1a over the canonical serialization — folded into the streaming
/// checkpoint identity (the empty trace hashes like any other value, so a
/// journal recorded with churn never resumes without it and vice versa).
std::uint64_t churnTraceHash(const ChurnTrace& trace);

}  // namespace rfid::workload
