#include "workload/io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "ckpt/atomic_file.h"

namespace rfid::workload {

void saveDeployment(std::ostream& os, const core::System& sys) {
  os << "# rfidsched deployment v1\n";
  os.precision(17);  // round-trip doubles exactly
  for (const core::Reader& r : sys.readers()) {
    os << "reader," << r.id << ',' << r.pos.x << ',' << r.pos.y << ','
       << r.interference_radius << ',' << r.interrogation_radius << '\n';
  }
  for (const core::Tag& t : sys.tags()) {
    os << "tag," << t.id << ',' << t.pos.x << ',' << t.pos.y << ',' << t.epc
       << '\n';
  }
}

bool saveDeploymentFile(const std::string& path, const core::System& sys) {
  // Serialize to memory, then publish with tmp + fsync + rename: a crash or
  // full disk mid-save leaves either the old file or the new one at `path`,
  // never a torn half-deployment.
  std::ostringstream os;
  saveDeployment(os, sys);
  if (!os) return false;
  return ckpt::writeFileAtomic(path, os.str());
}

namespace {

/// Splits a CSV line; no quoting (the format never needs it).
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

/// Numeric fields must be *finite*: stod happily parses "nan" and "inf",
/// and a single non-finite coordinate or radius poisons every distance
/// comparison downstream (NaN makes them all false, inf makes a reader
/// cover everything).
bool parseFinite(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size() && std::isfinite(out);
  } catch (...) {
    return false;
  }
}

bool parseInt(const std::string& s, int& out) {
  try {
    std::size_t used = 0;
    out = std::stoi(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

/// Full-width unsigned parse for EPCs: a 96-bit-style identifier truncated
/// to 64 bits must not be squeezed through int (stoull would also silently
/// accept "-1" by wrapping, so negatives are rejected up front).
bool parseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  try {
    std::size_t used = 0;
    out = std::stoull(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<core::System> loadDeployment(std::istream& is,
                                           std::string* err) {
  std::vector<core::Reader> readers;
  std::vector<core::Tag> tags;
  std::unordered_set<int> reader_ids;
  std::unordered_set<int> tag_ids;
  std::string line;
  int lineno = 0;
  const auto bad = [&](const std::string& what) {
    if (err != nullptr) {
      *err = "deployment line " + std::to_string(lineno) + ": " + what;
    }
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineno;
    // Tolerate CRLF files (surveys exported from spreadsheets): getline
    // leaves the '\r' on the line, which would otherwise poison the last
    // field's numeric parse.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto f = split(line);
    if (f[0] == "reader" && f.size() == 6) {
      core::Reader r;
      if (!parseInt(f[1], r.id)) return bad("malformed reader id");
      double x = 0, y = 0;
      if (!parseFinite(f[2], x) || !parseFinite(f[3], y)) {
        return bad("reader position is not a finite number");
      }
      if (!parseFinite(f[4], r.interference_radius) ||
          !parseFinite(f[5], r.interrogation_radius)) {
        return bad("reader radius is not a finite number");
      }
      r.pos = {x, y};
      if (r.interference_radius < 0 || r.interrogation_radius < 0) {
        return bad("negative reader radius");
      }
      if (!r.valid()) {
        return bad("invalid radii (need 0 < interrogation <= interference)");
      }
      // A duplicated id is a corrupt survey, not two devices; accepting it
      // would silently skew every id-keyed structure downstream.
      if (!reader_ids.insert(r.id).second) {
        return bad("duplicate reader id " + std::to_string(r.id));
      }
      readers.push_back(r);
    } else if (f[0] == "tag" && f.size() == 5) {
      core::Tag t;
      if (!parseInt(f[1], t.id)) return bad("malformed tag id");
      double x = 0, y = 0;
      if (!parseFinite(f[2], x) || !parseFinite(f[3], y)) {
        return bad("tag position is not a finite number");
      }
      if (!parseU64(f[4], t.epc)) return bad("malformed tag epc");
      t.pos = {x, y};
      if (!tag_ids.insert(t.id).second) {
        return bad("duplicate tag id " + std::to_string(t.id));
      }
      tags.push_back(t);
    } else {
      return bad("unrecognized record '" + f[0] + "'");  // fail closed
    }
  }
  if (readers.empty()) {
    if (err != nullptr) *err = "deployment has no readers";
    return std::nullopt;
  }
  return core::System(std::move(readers), std::move(tags));
}

std::optional<core::System> loadDeploymentFile(const std::string& path,
                                               std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err != nullptr) *err = "cannot open deployment at " + path;
    return std::nullopt;
  }
  return loadDeployment(is, err);
}

}  // namespace rfid::workload
