#include "workload/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace rfid::workload {

void saveDeployment(std::ostream& os, const core::System& sys) {
  os << "# rfidsched deployment v1\n";
  os.precision(17);  // round-trip doubles exactly
  for (const core::Reader& r : sys.readers()) {
    os << "reader," << r.id << ',' << r.pos.x << ',' << r.pos.y << ','
       << r.interference_radius << ',' << r.interrogation_radius << '\n';
  }
  for (const core::Tag& t : sys.tags()) {
    os << "tag," << t.id << ',' << t.pos.x << ',' << t.pos.y << ',' << t.epc
       << '\n';
  }
}

bool saveDeploymentFile(const std::string& path, const core::System& sys) {
  std::ofstream os(path);
  if (!os) return false;
  saveDeployment(os, sys);
  return static_cast<bool>(os);
}

namespace {

/// Splits a CSV line; no quoting (the format never needs it).
std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

bool parseDouble(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parseInt(const std::string& s, int& out) {
  try {
    std::size_t used = 0;
    out = std::stoi(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<core::System> loadDeployment(std::istream& is) {
  std::vector<core::Reader> readers;
  std::vector<core::Tag> tags;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto f = split(line);
    if (f[0] == "reader" && f.size() == 6) {
      core::Reader r;
      double x = 0, y = 0;
      if (!parseInt(f[1], r.id) || !parseDouble(f[2], x) ||
          !parseDouble(f[3], y) || !parseDouble(f[4], r.interference_radius) ||
          !parseDouble(f[5], r.interrogation_radius)) {
        return std::nullopt;
      }
      r.pos = {x, y};
      if (!r.valid()) return std::nullopt;
      readers.push_back(r);
    } else if (f[0] == "tag" && f.size() == 5) {
      core::Tag t;
      double x = 0, y = 0;
      int epc = 0;
      if (!parseInt(f[1], t.id) || !parseDouble(f[2], x) ||
          !parseDouble(f[3], y) || !parseInt(f[4], epc)) {
        return std::nullopt;
      }
      t.pos = {x, y};
      t.epc = static_cast<std::uint64_t>(epc);
      tags.push_back(t);
    } else {
      return std::nullopt;  // fail closed on anything unrecognized
    }
  }
  if (readers.empty()) return std::nullopt;
  return core::System(std::move(readers), std::move(tags));
}

std::optional<core::System> loadDeploymentFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return loadDeployment(is);
}

}  // namespace rfid::workload
