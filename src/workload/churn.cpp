#include "workload/churn.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "ckpt/atomic_file.h"
#include "ckpt/journal.h"
#include "workload/rng.h"

namespace rfid::workload {

ChurnTrace makeChurnTrace(const ChurnConfig& cfg, int initial_tags,
                          std::uint64_t seed) {
  const Rng root(seed);
  Rng counts = root.split("churn-counts");
  Rng positions = root.split("churn-positions");
  Rng picks = root.split("churn-picks");
  Rng burst = root.split("churn-burst");

  ChurnTrace trace;
  // The present set, by System index.  Departures swap-remove so sampling
  // stays O(1); the *trace* records indices, not positions in this vector.
  std::vector<int> present;
  present.reserve(static_cast<std::size_t>(initial_tags));
  for (int t = 0; t < initial_tags; ++t) present.push_back(t);
  int next_index = initial_tags;  // matches System::addTag's assignment order

  const bool bursty = cfg.burst_multiplier != 1.0;
  bool in_burst = false;
  for (int slot = 0; slot < cfg.slots; ++slot) {
    if (bursty) {
      in_burst = in_burst ? !burst.bernoulli(cfg.burst_exit)
                          : burst.bernoulli(cfg.burst_enter);
    }
    const double rate =
        in_burst ? cfg.arrival_rate * cfg.burst_multiplier : cfg.arrival_rate;
    const int arrivals = rate > 0.0 ? counts.poisson(rate) : 0;
    for (int i = 0; i < arrivals; ++i) {
      ChurnEvent e;
      e.slot = slot;
      e.kind = ChurnKind::kArrive;
      e.pos = {positions.uniform(0.0, cfg.region_side),
               positions.uniform(0.0, cfg.region_side)};
      e.epc = static_cast<std::uint64_t>(next_index);
      trace.events.push_back(e);
      present.push_back(next_index++);
    }
    const int departs =
        cfg.depart_rate > 0.0 ? counts.poisson(cfg.depart_rate) : 0;
    for (int i = 0; i < departs && !present.empty(); ++i) {
      const int k = picks.uniformInt(0, static_cast<int>(present.size()) - 1);
      ChurnEvent e;
      e.slot = slot;
      e.kind = ChurnKind::kDepart;
      e.tag = present[static_cast<std::size_t>(k)];
      trace.events.push_back(e);
      present[static_cast<std::size_t>(k)] = present.back();
      present.pop_back();
    }
    const int moves = cfg.move_rate > 0.0 ? counts.poisson(cfg.move_rate) : 0;
    for (int i = 0; i < moves && !present.empty(); ++i) {
      const int k = picks.uniformInt(0, static_cast<int>(present.size()) - 1);
      ChurnEvent e;
      e.slot = slot;
      e.kind = ChurnKind::kMove;
      e.tag = present[static_cast<std::size_t>(k)];
      e.pos = {positions.uniform(0.0, cfg.region_side),
               positions.uniform(0.0, cfg.region_side)};
      trace.events.push_back(e);
    }
  }
  trace.horizon =
      trace.events.empty() ? 0 : trace.events.back().slot + 1;
  return trace;
}

void saveChurnTrace(std::ostream& os, const ChurnTrace& trace) {
  os << "# rfidsched churn v1\n";
  os.precision(17);  // round-trip doubles exactly
  for (const ChurnEvent& e : trace.events) {
    switch (e.kind) {
      case ChurnKind::kArrive:
        os << "arrive," << e.slot << ',' << e.pos.x << ',' << e.pos.y << ','
           << e.epc << '\n';
        break;
      case ChurnKind::kDepart:
        os << "depart," << e.slot << ',' << e.tag << '\n';
        break;
      case ChurnKind::kMove:
        os << "move," << e.slot << ',' << e.tag << ',' << e.pos.x << ','
           << e.pos.y << '\n';
        break;
    }
  }
}

bool saveChurnTraceFile(const std::string& path, const ChurnTrace& trace) {
  std::ostringstream os;
  saveChurnTrace(os, trace);
  if (!os) return false;
  return ckpt::writeFileAtomic(path, os.str());
}

namespace {

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  return out;
}

bool parseFinite(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size() && std::isfinite(out);
  } catch (...) {
    return false;
  }
}

bool parseInt(const std::string& s, int& out) {
  try {
    std::size_t used = 0;
    out = std::stoi(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parseU64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  try {
    std::size_t used = 0;
    out = std::stoull(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool fail(std::string* err, int lineno, const std::string& what) {
  if (err != nullptr) {
    *err = "churn trace line " + std::to_string(lineno) + ": " + what;
  }
  return false;
}

}  // namespace

std::optional<ChurnTrace> loadChurnTrace(std::istream& is, std::string* err) {
  ChurnTrace trace;
  std::string line;
  int lineno = 0;
  int last_slot = 0;
  const auto bad = [&](const std::string& what) {
    fail(err, lineno, what);
    return std::nullopt;
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto f = split(line);
    ChurnEvent e;
    double x = 0, y = 0;
    if (f[0] == "arrive" && f.size() == 5) {
      e.kind = ChurnKind::kArrive;
      if (!parseInt(f[1], e.slot) || !parseFinite(f[2], x) ||
          !parseFinite(f[3], y) || !parseU64(f[4], e.epc)) {
        return bad("malformed arrive record");
      }
      e.pos = {x, y};
    } else if (f[0] == "depart" && f.size() == 3) {
      e.kind = ChurnKind::kDepart;
      if (!parseInt(f[1], e.slot) || !parseInt(f[2], e.tag)) {
        return bad("malformed depart record");
      }
      if (e.tag < 0) return bad("negative tag index");
    } else if (f[0] == "move" && f.size() == 5) {
      e.kind = ChurnKind::kMove;
      if (!parseInt(f[1], e.slot) || !parseInt(f[2], e.tag) ||
          !parseFinite(f[3], x) || !parseFinite(f[4], y)) {
        return bad("malformed move record");
      }
      if (e.tag < 0) return bad("negative tag index");
      e.pos = {x, y};
    } else {
      return bad("unrecognized record '" + f[0] + "'");
    }
    if (e.slot < 0) return bad("negative slot");
    if (e.slot < last_slot) return bad("slots out of order");
    last_slot = e.slot;
    trace.events.push_back(e);
  }
  trace.horizon = trace.events.empty() ? 0 : trace.events.back().slot + 1;
  return trace;
}

std::optional<ChurnTrace> loadChurnTraceFile(const std::string& path,
                                             std::string* err) {
  std::ifstream is(path);
  if (!is) {
    if (err != nullptr) *err = "cannot open churn trace at " + path;
    return std::nullopt;
  }
  return loadChurnTrace(is, err);
}

std::uint64_t churnTraceHash(const ChurnTrace& trace) {
  std::ostringstream os;
  saveChurnTrace(os, trace);
  return ckpt::fnv1a(os.str());
}

}  // namespace rfid::workload
