// io.h — deployment serialization.
//
// Experiments must be shareable: a deployment written by one run (or by an
// actual site survey) can be reloaded bit-exactly by another, independent
// of RNG or library version.  The format is a minimal line-based CSV:
//
//   # rfidsched deployment v1
//   reader,<id>,<x>,<y>,<interference_radius>,<interrogation_radius>
//   tag,<id>,<x>,<y>,<epc>
//
// Unknown lines, duplicated reader/tag ids, and out-of-range fields are
// rejected (fail closed); `#` lines are comments; CRLF line endings are
// tolerated.  EPCs are full-width uint64 values.  saveDeploymentFile
// publishes atomically (tmp + fsync + rename, ckpt/atomic_file.h) so a
// crashed or out-of-space save never leaves a torn file behind.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/system.h"

namespace rfid::workload {

/// Writes the deployment (not the read-state) to `os`.
void saveDeployment(std::ostream& os, const core::System& sys);

/// Convenience file form; returns false on I/O failure.
bool saveDeploymentFile(const std::string& path, const core::System& sys);

/// Parses a deployment.  Returns std::nullopt on any malformed line,
/// non-finite coordinates or radii (NaN/inf poison every distance the
/// schedulers compute), invalid radii (γ > R, γ ≤ 0, or R < 0), or an
/// empty reader set.  On failure `err` (when given) names the offending
/// line and field.
std::optional<core::System> loadDeployment(std::istream& is,
                                           std::string* err = nullptr);

/// Convenience file form.
std::optional<core::System> loadDeploymentFile(const std::string& path,
                                               std::string* err = nullptr);

}  // namespace rfid::workload
