// rng.h — deterministic, splittable random number generation.
//
// Every stochastic piece of the library (deployments, Colorwave's random
// colors, ALOHA slot picks) draws from an Rng seeded explicitly, so every
// experiment is reproducible bit-for-bit from its seed.  Sub-streams are
// derived by hashing (seed, label, index), which keeps parallel sweeps
// independent of iteration order — an HPC-reproducibility idiom: results
// must not depend on how work was scheduled.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace rfid::workload {

/// SplitMix64 — tiny, high-quality mixer used for seed derivation.
std::uint64_t splitmix64(std::uint64_t x);

/// Derives an independent child seed from (seed, label, index).
std::uint64_t deriveSeed(std::uint64_t seed, std::string_view label,
                         std::uint64_t index = 0);

/// Thin deterministic wrapper around mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

  std::uint64_t seed() const { return seed_; }

  /// Child generator for an independent sub-stream; deterministic in
  /// (this->seed, label, index) and unaffected by draws made so far.
  Rng split(std::string_view label, std::uint64_t index = 0) const {
    return Rng(deriveSeed(seed_, label, index));
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Integer in [lo, hi] inclusive.
  int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::uint64_t next() { return engine_(); }

  /// Poisson draw with the given mean (paper §VI samples radii this way).
  int poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace rfid::workload
