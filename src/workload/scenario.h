// scenario.h — named, ready-to-run experiment scenarios.
//
// A Scenario bundles a DeploymentConfig with a spatial process and builds a
// complete core::System from a seed.  The paper preset reproduces §VI's
// setup exactly (50 readers, 1200 tags, 100×100 region, Poisson radii);
// the others back the examples and robustness tests.
#pragma once

#include <string>

#include "core/system.h"
#include "workload/deployment.h"

namespace rfid::workload {

enum class Layout {
  kUniform,          // paper §VI
  kClusteredTags,    // pallet hot-spots
  kAisles,           // warehouse shelves
  kGridReaders,      // planned ceiling installation, uniform tags
};

struct Scenario {
  std::string name = "paper";
  DeploymentConfig deploy;
  Layout layout = Layout::kUniform;
  // Layout knobs (ignored when not applicable).
  int num_clusters = 8;
  double cluster_sigma = 5.0;
  int num_aisles = 10;
  double aisle_jitter = 1.0;
  int grid_cols = 10;
  int grid_rows = 5;
};

/// The paper's §VI setting with the given radius means.
Scenario paperScenario(double lambda_R = 10.0, double lambda_r = 4.0);

/// Builds the System for a scenario, deterministic in (scenario, seed).
core::System makeSystem(const Scenario& sc, std::uint64_t seed);

}  // namespace rfid::workload
