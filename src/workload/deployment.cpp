#include "workload/deployment.h"

#include <algorithm>
#include <cassert>

#include "workload/distributions.h"

namespace rfid::workload {

namespace {

std::pair<double, double> drawRadii(const DeploymentConfig& cfg, Rng& rng) {
  switch (cfg.radius_mode) {
    case RadiusMode::kPoissonPair:
      return radiusPair(rng, cfg.lambda_R, cfg.lambda_r);
    case RadiusMode::kBetaScaled:
      return radiusPairBeta(rng, cfg.lambda_R, cfg.beta);
  }
  return {1.0, 1.0};  // unreachable
}

geom::Vec2 clampToRegion(geom::Vec2 p, double side) {
  return {std::clamp(p.x, 0.0, side), std::clamp(p.y, 0.0, side)};
}

}  // namespace

std::vector<core::Reader> uniformReaders(const DeploymentConfig& cfg, Rng rng) {
  std::vector<core::Reader> readers;
  readers.reserve(static_cast<std::size_t>(cfg.num_readers));
  for (int i = 0; i < cfg.num_readers; ++i) {
    core::Reader r;
    r.id = i;
    r.pos = {rng.uniform(0.0, cfg.region_side), rng.uniform(0.0, cfg.region_side)};
    const auto [R, gamma] = drawRadii(cfg, rng);
    r.interference_radius = R;
    r.interrogation_radius = gamma;
    readers.push_back(r);
  }
  return readers;
}

std::vector<core::Tag> uniformTags(const DeploymentConfig& cfg, Rng rng) {
  std::vector<core::Tag> tags;
  tags.reserve(static_cast<std::size_t>(cfg.num_tags));
  for (int i = 0; i < cfg.num_tags; ++i) {
    core::Tag t;
    t.id = i;
    t.epc = static_cast<std::uint64_t>(i);
    t.pos = {rng.uniform(0.0, cfg.region_side), rng.uniform(0.0, cfg.region_side)};
    tags.push_back(t);
  }
  return tags;
}

std::vector<core::Tag> clusteredTags(const DeploymentConfig& cfg, Rng rng,
                                     int num_clusters, double cluster_sigma) {
  assert(num_clusters > 0);
  std::vector<geom::Vec2> centers;
  centers.reserve(static_cast<std::size_t>(num_clusters));
  for (int c = 0; c < num_clusters; ++c) {
    centers.push_back({rng.uniform(0.0, cfg.region_side),
                       rng.uniform(0.0, cfg.region_side)});
  }
  std::vector<core::Tag> tags;
  tags.reserve(static_cast<std::size_t>(cfg.num_tags));
  for (int i = 0; i < cfg.num_tags; ++i) {
    const geom::Vec2 c = centers[static_cast<std::size_t>(rng.uniformInt(0, num_clusters - 1))];
    core::Tag t;
    t.id = i;
    t.epc = static_cast<std::uint64_t>(i);
    t.pos = clampToRegion({c.x + rng.gaussian(0.0, cluster_sigma),
                           c.y + rng.gaussian(0.0, cluster_sigma)},
                          cfg.region_side);
    tags.push_back(t);
  }
  return tags;
}

std::vector<core::Tag> aisleTags(const DeploymentConfig& cfg, Rng rng,
                                 int num_aisles, double jitter) {
  assert(num_aisles > 0);
  std::vector<core::Tag> tags;
  tags.reserve(static_cast<std::size_t>(cfg.num_tags));
  const double spacing = cfg.region_side / (num_aisles + 1);
  for (int i = 0; i < cfg.num_tags; ++i) {
    const int aisle = rng.uniformInt(1, num_aisles);
    core::Tag t;
    t.id = i;
    t.epc = static_cast<std::uint64_t>(i);
    t.pos = clampToRegion({rng.uniform(0.0, cfg.region_side),
                           aisle * spacing + rng.gaussian(0.0, jitter)},
                          cfg.region_side);
    tags.push_back(t);
  }
  return tags;
}

std::vector<core::Reader> gridReaders(const DeploymentConfig& cfg, Rng rng,
                                      int grid_cols, int grid_rows) {
  assert(grid_cols * grid_rows >= cfg.num_readers);
  std::vector<core::Reader> readers;
  readers.reserve(static_cast<std::size_t>(cfg.num_readers));
  const double dx = cfg.region_side / grid_cols;
  const double dy = cfg.region_side / grid_rows;
  for (int i = 0; i < cfg.num_readers; ++i) {
    const int col = i % grid_cols;
    const int row = i / grid_cols;
    core::Reader r;
    r.id = i;
    r.pos = {(col + 0.5) * dx, (row + 0.5) * dy};
    const auto [R, gamma] = drawRadii(cfg, rng);
    r.interference_radius = R;
    r.interrogation_radius = gamma;
    readers.push_back(r);
  }
  return readers;
}

}  // namespace rfid::workload
