// distributions.h — radius distributions used by the paper's evaluation.
//
// Paper §VI: "we randomly assign different interference range and
// interrogation range to each reader following Poisson distribution with
// parameter (mean) λ_R and λ_r respectively.  We may need to modify some
// assignments to ensure R_i ≥ r_i."
//
// Poisson is a discrete distribution, so a raw draw can be 0 — useless as a
// radius.  We keep the paper's stated sampler but clamp draws to ≥ 1 length
// unit (documented substitution in DESIGN.md), and repair R < r violations
// by swapping the pair, which preserves both marginals' large-sample means.
#pragma once

#include <utility>

#include "workload/rng.h"

namespace rfid::workload {

/// A radius draw: max(1, Poisson(mean)).
double poissonRadius(Rng& rng, double mean);

/// Draws one (R, r) pair with R ~ Poisson(λ_R), r ~ Poisson(λ_r), repaired
/// so that R ≥ r ≥ 1 (swap if violated, as the paper's "modify some
/// assignments" rule).
std::pair<double, double> radiusPair(Rng& rng, double lambda_R, double lambda_r);

/// Fixed-β mode of §II: r = β·R with 0 < β < 1, R ~ Poisson(λ_R) clamped.
/// Used by the ablation over β (RRc pressure).
std::pair<double, double> radiusPairBeta(Rng& rng, double lambda_R, double beta);

}  // namespace rfid::workload
