#include "workload/rng.h"

namespace rfid::workload {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t deriveSeed(std::uint64_t seed, std::string_view label,
                         std::uint64_t index) {
  std::uint64_t h = splitmix64(seed);
  for (const char c : label) {
    h = splitmix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return splitmix64(h ^ index);
}

}  // namespace rfid::workload
