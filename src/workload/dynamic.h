// dynamic.h — dynamic tag arrivals (extension).
//
// The paper criticizes Zhou et al. for assuming "the distribution of the
// tags [is] static and no new tags will appear in the system dynamically"
// (§VII) — but evaluates statically itself.  This module closes that loop:
// tags arrive over time (per-slot Poisson process at uniform positions) and
// a one-shot scheduler runs every slot against the *currently present*
// unread population.  Metrics are throughput, service latency (arrival slot
// to read slot), and backlog.
//
// Mechanically, all tags of the horizon are pre-generated into the System
// (positions, coverage) and parked as "read" — invisible to schedulers —
// then un-read at their arrival slot.  This keeps core::System immutable in
// structure while its read-state does what it always does: gate weight.
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "sched/scheduler.h"
#include "workload/deployment.h"
#include "workload/rng.h"

namespace rfid::workload {

struct DynamicConfig {
  /// Mean new tags per slot (Poisson).
  double arrival_rate = 30.0;
  /// Slots during which arrivals occur.
  int arrival_slots = 40;
  /// Additional drain slots after arrivals stop.
  int drain_slots = 200;
  /// Reader-side deployment (tag count is derived from the arrivals).
  DeploymentConfig deploy;
};

struct DynamicResult {
  int arrived = 0;           // tags that entered the field
  int arrived_coverable = 0; // of which some reader could ever serve
  int served = 0;
  double mean_latency = 0.0; // slots from arrival to service (served only)
  int max_backlog = 0;       // peak unread coverable tags present
  int slots_run = 0;
  /// Unread coverable backlog after each slot (length slots_run).
  std::vector<int> backlog;
  bool drained = false;      // all coverable arrivals served by the end
};

/// Builds a System pre-loaded with every future arrival, plus the arrival
/// slot per tag.  Deterministic in (cfg, seed).
struct DynamicInstance {
  core::System system;
  std::vector<int> arrival_slot;  // per tag index
};
DynamicInstance makeDynamicInstance(const DynamicConfig& cfg,
                                    std::uint64_t seed);

/// Runs the arrival/service loop with `scheduler` deciding each slot.
DynamicResult runDynamicSimulation(DynamicInstance& instance,
                                   sched::OneShotScheduler& scheduler,
                                   const DynamicConfig& cfg);

}  // namespace rfid::workload
