#include "workload/mobility.h"

#include <algorithm>
#include <cassert>

namespace rfid::workload {

MobilitySimulation::MobilitySimulation(const MobilityConfig& cfg,
                                       std::uint64_t seed)
    : cfg_(cfg), rng_(deriveSeed(seed, "mobility")) {
  const Rng root(seed);
  readers_ = uniformReaders(cfg.deploy, root.split("readers"));
  tags_ = uniformTags(cfg.deploy, root.split("tags"));
  pos_.reserve(readers_.size());
  for (const core::Reader& r : readers_) pos_.push_back(r.pos);
  target_ = pos_;
  pause_left_.assign(readers_.size(), 0);
  read_.assign(tags_.size(), 0);
}

void MobilitySimulation::step() {
  const double side = cfg_.deploy.region_side;
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (pause_left_[i] > 0) {
      --pause_left_[i];
      continue;
    }
    const geom::Vec2 delta = target_[i] - pos_[i];
    const double d = delta.norm();
    if (d <= cfg_.speed) {
      // Waypoint reached: rest, then pick the next one.
      pos_[i] = target_[i];
      pause_left_[i] = cfg_.pause_slots;
      target_[i] = {rng_.uniform(0.0, side), rng_.uniform(0.0, side)};
    } else {
      pos_[i] += delta * (cfg_.speed / d);
    }
  }
}

core::System MobilitySimulation::snapshot(
    std::span<const geom::Vec2> positions) const {
  std::vector<core::Reader> readers = readers_;
  for (std::size_t i = 0; i < readers.size(); ++i) readers[i].pos = positions[i];
  core::System sys(std::move(readers), tags_);
  for (std::size_t t = 0; t < read_.size(); ++t) {
    if (read_[t] != 0) sys.markRead(static_cast<int>(t));
  }
  return sys;
}

MobilityResult MobilitySimulation::run(const SchedulerFactory& factory) {
  assert(cfg_.survey_period >= 1);
  MobilityResult res;

  std::unique_ptr<core::System> survey_sys;
  std::unique_ptr<graph::InterferenceGraph> survey_graph;
  std::unique_ptr<sched::OneShotScheduler> scheduler;

  for (int slot = 0; slot < cfg_.slots; ++slot) {
    step();

    if (slot % cfg_.survey_period == 0 || survey_sys == nullptr) {
      // Fresh site survey: snapshot positions, rebuild graph + scheduler.
      survey_sys = std::make_unique<core::System>(snapshot(pos_));
      survey_graph = std::make_unique<graph::InterferenceGraph>(*survey_sys);
      scheduler = factory(*survey_sys, *survey_graph);
    } else {
      // Keep the stale survey but tell it which tags are gone by now.
      for (std::size_t t = 0; t < read_.size(); ++t) {
        if (read_[t] != 0) survey_sys->markRead(static_cast<int>(t));
      }
    }

    // Plan on the survey; score against reality.
    const sched::OneShotResult plan = scheduler->schedule(*survey_sys);
    const core::System truth = snapshot(pos_);
    const std::vector<int> served = truth.wellCoveredTags(plan.readers);
    for (const int t : served) read_[static_cast<std::size_t>(t)] = 1;

    res.served_series.push_back(static_cast<int>(served.size()));
    res.tags_read += static_cast<int>(served.size());
    res.empty_slots += served.empty() ? 1 : 0;
    res.slots_run = slot + 1;
  }
  return res;
}

}  // namespace rfid::workload
