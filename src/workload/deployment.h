// deployment.h — deployment generators: where readers and tags go.
//
// The paper's evaluation deploys both readers and tags uniformly at random
// in a square.  Real installations the introduction motivates (supermarkets,
// post offices, warehouses) are not uniform, so the library also ships
// clustered and aisle generators used by the examples and the robustness
// tests — same model, different spatial processes.
#pragma once

#include <vector>

#include "core/reader.h"
#include "core/tag.h"
#include "workload/rng.h"

namespace rfid::workload {

/// How interrogation radii relate to interference radii.
enum class RadiusMode {
  /// Independent Poisson draws with R ≥ r repair (paper §VI).
  kPoissonPair,
  /// r = β·R (paper §II's constant-β model); `beta` must be set.
  kBetaScaled,
};

struct DeploymentConfig {
  int num_readers = 50;      // paper §VI
  int num_tags = 1200;       // paper §VI
  double region_side = 100;  // paper §VI
  double lambda_R = 10.0;    // interference-radius mean
  double lambda_r = 4.0;     // interrogation-radius mean
  RadiusMode radius_mode = RadiusMode::kPoissonPair;
  double beta = 0.4;         // only used by kBetaScaled
};

/// Uniform random deployment (the paper's setting).
/// Reader and tag positions are i.i.d. uniform over the square; radii are
/// drawn per `radius_mode`.  Deterministic in (config, seed).
std::vector<core::Reader> uniformReaders(const DeploymentConfig& cfg, Rng rng);
std::vector<core::Tag> uniformTags(const DeploymentConfig& cfg, Rng rng);

/// Tags clumped around `num_clusters` Gaussian hot-spots (e.g. pallets):
/// cluster centers uniform, spread = cluster_sigma.  Points falling outside
/// the region are clamped to it.
std::vector<core::Tag> clusteredTags(const DeploymentConfig& cfg, Rng rng,
                                     int num_clusters, double cluster_sigma);

/// Warehouse aisles: tags placed along `num_aisles` evenly spaced horizontal
/// lines with small vertical jitter — the dense-shelf layout that makes RRc
/// overlap losses visible.
std::vector<core::Tag> aisleTags(const DeploymentConfig& cfg, Rng rng,
                                 int num_aisles, double jitter);

/// Readers on a regular ceiling grid (planned installation), radii per
/// `radius_mode`.  grid_cols × grid_rows must be ≥ cfg.num_readers; the
/// first num_readers cells are used row-major.
std::vector<core::Reader> gridReaders(const DeploymentConfig& cfg, Rng rng,
                                      int grid_cols, int grid_rows);

}  // namespace rfid::workload
