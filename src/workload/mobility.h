// mobility.h — mobile readers and stale site surveys (extension, §I).
//
// The paper's introduction motivates dropping the known-locations
// assumption because "the position of each reader is often highly dynamic
// and we can not expect that their exact geometry location can always be
// obtained".  This module makes that concrete: readers move (random
// waypoint), and the scheduler plans on the *last site survey* — a snapshot
// of positions taken every `survey_period` slots — while the referee scores
// each slot against the readers' TRUE current positions.  The gap between
// the two is precisely the cost of stale location knowledge, swept in
// bench/mobility_staleness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/system.h"
#include "graph/interference_graph.h"
#include "sched/scheduler.h"
#include "workload/deployment.h"
#include "workload/rng.h"

namespace rfid::workload {

struct MobilityConfig {
  DeploymentConfig deploy;
  /// Distance a reader covers per slot while moving.
  double speed = 2.0;
  /// Slots a reader rests at each waypoint.
  int pause_slots = 2;
  /// Simulation length in slots.
  int slots = 60;
  /// A fresh site survey (positions + interference graph + scheduler
  /// rebuild) happens every this many slots; 1 = always current.
  int survey_period = 1;
};

/// Builds the scheduler for a (possibly stale) survey snapshot.  Called at
/// every survey; graph-based schedulers are reconstructed from the fresh
/// interference graph, exactly like re-running the paper's RF site survey.
using SchedulerFactory = std::function<std::unique_ptr<sched::OneShotScheduler>(
    const core::System& snapshot, const graph::InterferenceGraph& graph)>;

struct MobilityResult {
  int slots_run = 0;
  int tags_read = 0;
  /// Tags served per slot.
  std::vector<int> served_series;
  /// Slots in which the (stale-survey) decision served zero tags.
  int empty_slots = 0;
};

/// Random-waypoint fleet over a fixed tag field.
class MobilitySimulation {
 public:
  MobilitySimulation(const MobilityConfig& cfg, std::uint64_t seed);

  /// Runs the slot loop with surveys every cfg.survey_period slots.
  MobilityResult run(const SchedulerFactory& factory);

  /// Current true reader positions (after the last run() slot).
  const std::vector<geom::Vec2>& positions() const { return pos_; }

 private:
  void step();  // advance every reader by one slot of movement
  core::System snapshot(std::span<const geom::Vec2> positions) const;

  MobilityConfig cfg_;
  Rng rng_;
  std::vector<core::Reader> readers_;  // radii + ids (positions overridden)
  std::vector<core::Tag> tags_;
  std::vector<geom::Vec2> pos_;
  std::vector<geom::Vec2> target_;
  std::vector<int> pause_left_;
  std::vector<char> read_;  // persistent tag state across snapshots
};

}  // namespace rfid::workload
