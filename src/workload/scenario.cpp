#include "workload/scenario.h"

namespace rfid::workload {

Scenario paperScenario(double lambda_R, double lambda_r) {
  Scenario sc;
  sc.name = "paper";
  sc.deploy.num_readers = 50;
  sc.deploy.num_tags = 1200;
  sc.deploy.region_side = 100.0;
  sc.deploy.lambda_R = lambda_R;
  sc.deploy.lambda_r = lambda_r;
  sc.deploy.radius_mode = RadiusMode::kPoissonPair;
  sc.layout = Layout::kUniform;
  return sc;
}

core::System makeSystem(const Scenario& sc, std::uint64_t seed) {
  const Rng root(seed);
  const Rng reader_rng = root.split("readers");
  const Rng tag_rng = root.split("tags");

  std::vector<core::Reader> readers;
  switch (sc.layout) {
    case Layout::kGridReaders:
      readers = gridReaders(sc.deploy, reader_rng, sc.grid_cols, sc.grid_rows);
      break;
    default:
      readers = uniformReaders(sc.deploy, reader_rng);
      break;
  }

  std::vector<core::Tag> tags;
  switch (sc.layout) {
    case Layout::kClusteredTags:
      tags = clusteredTags(sc.deploy, tag_rng, sc.num_clusters, sc.cluster_sigma);
      break;
    case Layout::kAisles:
      tags = aisleTags(sc.deploy, tag_rng, sc.num_aisles, sc.aisle_jitter);
      break;
    default:
      tags = uniformTags(sc.deploy, tag_rng);
      break;
  }

  return core::System(std::move(readers), std::move(tags));
}

}  // namespace rfid::workload
