#include "workload/dynamic.h"

#include <algorithm>
#include <cassert>

namespace rfid::workload {

DynamicInstance makeDynamicInstance(const DynamicConfig& cfg,
                                    std::uint64_t seed) {
  const Rng root(seed);
  Rng arrivals = root.split("arrivals");
  Rng positions = root.split("tag-positions");

  std::vector<core::Tag> tags;
  std::vector<int> arrival_slot;
  for (int slot = 0; slot < cfg.arrival_slots; ++slot) {
    // poisson(mean <= 0) is UB in the underlying distribution; a zero rate
    // legitimately means "no arrivals" (drain-only experiments).
    const int n = cfg.arrival_rate > 0.0 ? arrivals.poisson(cfg.arrival_rate) : 0;
    for (int i = 0; i < n; ++i) {
      core::Tag t;
      t.id = static_cast<int>(tags.size());
      t.epc = static_cast<std::uint64_t>(tags.size());
      t.pos = {positions.uniform(0.0, cfg.deploy.region_side),
               positions.uniform(0.0, cfg.deploy.region_side)};
      tags.push_back(t);
      arrival_slot.push_back(slot);
    }
  }

  DeploymentConfig dc = cfg.deploy;
  dc.num_tags = static_cast<int>(tags.size());
  std::vector<core::Reader> readers = uniformReaders(dc, root.split("readers"));

  DynamicInstance inst{core::System(std::move(readers), std::move(tags)),
                       std::move(arrival_slot)};
  // Park every tag as not-yet-arrived.
  for (int t = 0; t < inst.system.numTags(); ++t) inst.system.markRead(t);
  return inst;
}

DynamicResult runDynamicSimulation(DynamicInstance& instance,
                                   sched::OneShotScheduler& scheduler,
                                   const DynamicConfig& cfg) {
  core::System& sys = instance.system;
  DynamicResult res;
  res.arrived = sys.numTags();
  for (int t = 0; t < sys.numTags(); ++t) {
    if (!sys.coverers(t).empty()) ++res.arrived_coverable;
  }

  std::vector<char> present(static_cast<std::size_t>(sys.numTags()), 0);
  double latency_sum = 0.0;
  const int horizon = cfg.arrival_slots + cfg.drain_slots;

  for (int slot = 0; slot < horizon; ++slot) {
    // Arrivals enter the field at the start of the slot.
    for (int t = 0; t < sys.numTags(); ++t) {
      if (instance.arrival_slot[static_cast<std::size_t>(t)] == slot) {
        sys.markUnread(t);
        present[static_cast<std::size_t>(t)] = 1;
      }
    }
    const sched::OneShotResult one = scheduler.schedule(sys);
    const std::vector<int> served = sys.wellCoveredTags(one.readers);
    sys.markRead(served);
    for (const int t : served) {
      latency_sum += slot - instance.arrival_slot[static_cast<std::size_t>(t)];
    }
    res.served += static_cast<int>(served.size());

    const int backlog = sys.unreadCoverableCount();
    res.backlog.push_back(backlog);
    res.max_backlog = std::max(res.max_backlog, backlog);
    res.slots_run = slot + 1;

    // Early exit once arrivals ended and the floor is clean.
    if (slot >= cfg.arrival_slots && backlog == 0) break;
  }
  res.mean_latency = res.served > 0 ? latency_sum / res.served : 0.0;
  res.drained = sys.unreadCoverableCount() == 0;
  return res;
}

}  // namespace rfid::workload
