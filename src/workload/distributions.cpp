#include "workload/distributions.h"

#include <algorithm>
#include <cassert>

namespace rfid::workload {

double poissonRadius(Rng& rng, double mean) {
  assert(mean > 0.0);
  return std::max(1, rng.poisson(mean));
}

std::pair<double, double> radiusPair(Rng& rng, double lambda_R,
                                     double lambda_r) {
  double R = poissonRadius(rng, lambda_R);
  double r = poissonRadius(rng, lambda_r);
  if (R < r) std::swap(R, r);
  return {R, r};
}

std::pair<double, double> radiusPairBeta(Rng& rng, double lambda_R,
                                         double beta) {
  assert(beta > 0.0 && beta < 1.0);
  const double R = poissonRadius(rng, lambda_R);
  return {R, beta * R};
}

}  // namespace rfid::workload
