#include "protocol/aloha.h"

#include <algorithm>
#include <vector>

namespace rfid::protocol {

AlohaResult runAloha(int num_tags, workload::Rng& rng,
                     const AlohaOptions& opt) {
  AlohaResult res;
  int remaining = num_tags;
  int frame = std::clamp(opt.initial_frame, opt.min_frame, opt.max_frame);
  std::vector<int> occupancy;

  while (remaining > 0 && res.frames < opt.max_frames) {
    occupancy.assign(static_cast<std::size_t>(frame), 0);
    for (int t = 0; t < remaining; ++t) {
      ++occupancy[static_cast<std::size_t>(rng.uniformInt(0, frame - 1))];
    }
    int singles = 0;
    int collisions = 0;
    int empties = 0;
    for (const int o : occupancy) {
      if (o == 0) ++empties;
      else if (o == 1) ++singles;
      else ++collisions;
    }
    remaining -= singles;
    res.tags_identified += singles;
    res.collisions += collisions;
    res.empties += empties;
    res.micro_slots += frame;
    ++res.frames;

    // Vogt's rule of thumb: a collision slot hides ≥ 2 tags on average, so
    // the backlog estimate is 2·collisions; frame size tracks the backlog.
    const int estimate = std::max(remaining > 0 ? 1 : 0, 2 * collisions);
    frame = std::clamp(estimate, opt.min_frame, opt.max_frame);
  }
  res.completed = remaining == 0;
  return res;
}

}  // namespace rfid::protocol
