#include "protocol/aloha.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace rfid::protocol {

AlohaResult runAloha(int num_tags, workload::Rng& rng,
                     const AlohaOptions& opt) {
  AlohaResult res;
  int remaining = num_tags;
  // Same floor-of-1 contract as the re-size rule below: caller-supplied
  // bounds must never yield an F = 0 frame.
  int frame = std::clamp(std::max(1, opt.initial_frame),
                         std::max(1, opt.min_frame), std::max(1, opt.max_frame));
  std::vector<int> occupancy;

  while (remaining > 0 && res.frames < opt.max_frames) {
    occupancy.assign(static_cast<std::size_t>(frame), 0);
    for (int t = 0; t < remaining; ++t) {
      ++occupancy[static_cast<std::size_t>(rng.uniformInt(0, frame - 1))];
    }
    int singles = 0;
    int collisions = 0;
    int empties = 0;
    for (const int o : occupancy) {
      if (o == 0) ++empties;
      else if (o == 1) ++singles;
      else ++collisions;
    }
    remaining -= singles;
    res.tags_identified += singles;
    res.collisions += collisions;
    res.empties += empties;
    res.micro_slots += frame;
    ++res.frames;

    if (opt.trace != nullptr) {
      opt.trace->instant(obs::EventKind::kFrame, "aloha.frame",
                         {{"frame", static_cast<double>(res.frames)},
                          {"size", static_cast<double>(frame)},
                          {"singles", static_cast<double>(singles)},
                          {"collisions", static_cast<double>(collisions)},
                          {"empties", static_cast<double>(empties)},
                          {"backlog", static_cast<double>(remaining)}});
    }

    // Vogt's rule of thumb: a collision slot hides ≥ 2 tags on average, so
    // the backlog estimate is 2·collisions; frame size tracks the backlog,
    // rounded up to the next power of two (readers signal frame size as a
    // Q exponent) and clamped to [min_frame, max_frame] with a floor of 1 —
    // a zero-collision frame with tags remaining must never propose F = 0,
    // which would loop on empty frames until max_frames.
    const int estimate = std::max(remaining > 0 ? 1 : 0, 2 * collisions);
    const int pow2 = static_cast<int>(
        std::bit_ceil(static_cast<unsigned>(std::max(1, estimate))));
    frame = std::clamp(pow2, std::max(1, opt.min_frame),
                       std::max(1, opt.max_frame));
  }
  res.completed = remaining == 0;

  if (opt.metrics != nullptr) {
    opt.metrics->counter("protocol.aloha.frames").add(res.frames);
    opt.metrics->counter("protocol.aloha.micro_slots").add(res.micro_slots);
    opt.metrics->counter("protocol.aloha.collisions").add(res.collisions);
    opt.metrics->counter("protocol.aloha.empties").add(res.empties);
    opt.metrics->counter("protocol.aloha.tags_identified")
        .add(res.tags_identified);
  }
  return res;
}

}  // namespace rfid::protocol
