// tree_walking.h — binary tree-walking tag arbitration (paper §II, TTc).
//
// The deterministic alternative to ALOHA (Law/Lee/Siu; Hush/Wood): the
// reader walks the binary EPC-id space, querying prefixes.  All tags whose
// id extends the queried prefix respond; a collision splits the prefix, a
// singleton identifies the tag, an empty prunes the subtree.  Probe count
// is the slot-duration currency — deterministic in the tag id multiset,
// unlike ALOHA.
#pragma once

#include <cstdint>
#include <span>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rfid::protocol {

struct TreeWalkResult {
  int tags_identified = 0;
  /// Reader queries issued (each costs one micro-slot on air).
  std::int64_t probes = 0;
  std::int64_t collisions = 0;
  std::int64_t empties = 0;
};

/// Identifies every tag in `epcs` by walking the `id_bits`-bit binary tree
/// from the most significant bit.  Duplicate EPCs are a physical
/// impossibility the protocol cannot separate; they are counted once and
/// the walk still terminates (asserted in debug builds).
///
/// Observability (optional): with `metrics` the walk adds the counters
/// `protocol.treewalk.probes` / `.collisions` / `.empties` /
/// `.tags_identified`; with `trace` it emits one kFrame summary event.
TreeWalkResult runTreeWalk(std::span<const std::uint64_t> epcs,
                           int id_bits = 16,
                           obs::MetricsRegistry* metrics = nullptr,
                           obs::TraceSink* trace = nullptr);

}  // namespace rfid::protocol
