#include "protocol/gen2.h"

#include <algorithm>
#include <cmath>

namespace rfid::protocol {

namespace {

int clampQ(int q) { return std::clamp(q, 0, 15); }

}  // namespace

int persistenceSlots(const Gen2Options& opt) {
  switch (opt.session) {
    case Gen2Session::kS0:
      return 0;
    case Gen2Session::kS1:
      return 1;
    case Gen2Session::kS2:
    case Gen2Session::kS3:
      return std::max(0, opt.persistence);
  }
  return 0;
}

Gen2Target roundTarget(const Gen2Options& opt, int macro_slot) {
  if (opt.alternate_target && macro_slot % 2 == 1) return Gen2Target::kB;
  return Gen2Target::kA;
}

void Gen2SessionState::ensure(std::size_t num_tags) {
  if (flag_b_.size() < num_tags) {
    flag_b_.resize(num_tags, 0);
    stamp_.resize(num_tags, -1);
  }
}

void Gen2SessionState::startSlot(int macro_slot, const Gen2Options& opt) {
  const int persist = persistenceSlots(opt);
  for (std::size_t t = 0; t < flag_b_.size(); ++t) {
    if (flag_b_[t] != 0 && macro_slot - stamp_[t] > persist) {
      flag_b_[t] = 0;
      stamp_[t] = -1;
    }
  }
}

void Gen2SessionState::onAck(int t, int macro_slot, Gen2Target target) {
  const auto i = static_cast<std::size_t>(t);
  if (target == Gen2Target::kA) {
    flag_b_[i] = 1;
    stamp_[i] = macro_slot;
  } else {
    flag_b_[i] = 0;
    stamp_[i] = -1;
  }
}

Gen2RoundResult runGen2Round(std::span<const int> population,
                             Gen2SessionState& session, int macro_slot,
                             Gen2Target target, workload::Rng& rng,
                             const Gen2Options& opt) {
  Gen2RoundResult res;
  int max_id = -1;
  for (const int t : population) max_id = std::max(max_id, t);
  session.ensure(static_cast<std::size_t>(max_id + 1));

  // Participants: tags whose session flag matches the round target.
  std::vector<int> pending;
  const bool want_b = target == Gen2Target::kB;
  for (const int t : population) {
    if (session.flagB(t) == want_b) {
      pending.push_back(t);
    } else {
      ++res.session_skips;
    }
  }
  if (pending.empty()) {
    // All suppressed: the slot is silent and charges nothing (deviation
    // from the spec's empty Query — see docs/protocol.md).
    res.completed = true;
    return res;
  }

  std::vector<char> acked(session.size(), 0);
  const int k = std::max(1, opt.mpr_k);
  double qfp = clampQ(opt.q0);
  int q = clampQ(opt.q0);
  std::vector<std::vector<int>> buckets;
  std::vector<int> backlog;

  while (!pending.empty() && res.frames < opt.max_frames &&
         res.micro_slots < opt.max_micro_slots) {
    const int frame = 1 << q;
    ++res.frames;
    res.air_us += opt.t_query_us;
    buckets.assign(static_cast<std::size_t>(frame), {});
    for (const int t : pending) {
      buckets[static_cast<std::size_t>(rng.uniformInt(0, frame - 1))]
          .push_back(t);
    }
    backlog.clear();
    int frame_collisions = 0;
    int frame_singles = 0;
    int frame_empties = 0;
    std::size_t s = 0;
    for (; s < buckets.size(); ++s) {
      if (res.micro_slots >= opt.max_micro_slots) break;
      const std::vector<int>& b = buckets[s];
      ++res.micro_slots;
      if (b.empty()) {
        ++res.empties;
        ++frame_empties;
        res.air_us += opt.t_empty_us;
        if (opt.policy == Gen2Policy::kQAlgorithm) {
          qfp = std::max(0.0, qfp - opt.c);
        }
      } else if (static_cast<int>(b.size()) <= k) {
        res.air_us += opt.t_success_us;
        if (b.size() == 1) {
          ++res.singles;
          ++frame_singles;
        } else {
          ++res.mpr_slots;
          res.mpr_resolved += static_cast<std::int64_t>(b.size());
        }
        for (const int t : b) {
          if (acked[static_cast<std::size_t>(t)] != 0) {
            res.double_identified = true;
          }
          acked[static_cast<std::size_t>(t)] = 1;
          session.onAck(t, macro_slot, target);
          res.identified.push_back(t);
        }
      } else {
        ++res.collisions;
        ++frame_collisions;
        res.air_us += opt.t_collision_us;
        for (const int t : b) backlog.push_back(t);
        if (opt.policy == Gen2Policy::kQAlgorithm) {
          qfp = std::min(15.0, qfp + opt.c);
        }
      }
      if (opt.policy == Gen2Policy::kQAlgorithm) {
        const int nq = clampQ(static_cast<int>(std::lround(qfp)));
        if (nq != q) {
          // QueryAdjust: abort the frame; unresolved tags redraw next frame.
          q = nq;
          ++res.adjusts;
          ++s;
          break;
        }
      }
    }
    // Tags in slots the aborted/capped frame never reached redraw too.
    for (; s < buckets.size(); ++s) {
      for (const int t : buckets[s]) backlog.push_back(t);
    }
    pending.swap(backlog);

    if (opt.policy == Gen2Policy::kAfsa && !pending.empty()) {
      // Improved-AFSA estimate: a collision slot hides ≈ 2.39 tags.
      const double estimate =
          std::max(1.0, 2.39 * static_cast<double>(frame_collisions));
      const int nq = clampQ(static_cast<int>(std::ceil(std::log2(estimate))));
      if (nq != q) {
        q = nq;
        ++res.adjusts;
      }
    }

    if (opt.trace != nullptr) {
      opt.trace->instant(
          obs::EventKind::kFrame, "gen2.frame",
          {{"frame", static_cast<double>(res.frames)},
           {"q", static_cast<double>(q)},
           {"singles", static_cast<double>(frame_singles)},
           {"collisions", static_cast<double>(frame_collisions)},
           {"empties", static_cast<double>(frame_empties)},
           {"backlog", static_cast<double>(pending.size())}});
    }
  }
  res.completed = pending.empty();

  if (opt.metrics != nullptr) {
    opt.metrics->counter("protocol.gen2.frames").add(res.frames);
    opt.metrics->counter("protocol.gen2.adjusts").add(res.adjusts);
    opt.metrics->counter("protocol.gen2.micro_slots").add(res.micro_slots);
    opt.metrics->counter("protocol.gen2.singles").add(res.singles);
    opt.metrics->counter("protocol.gen2.collisions").add(res.collisions);
    opt.metrics->counter("protocol.gen2.empties").add(res.empties);
    opt.metrics->counter("protocol.gen2.mpr_slots").add(res.mpr_slots);
    opt.metrics->counter("protocol.gen2.mpr_resolved").add(res.mpr_resolved);
    opt.metrics->counter("protocol.gen2.session_skips").add(res.session_skips);
    opt.metrics->counter("protocol.gen2.tags_identified")
        .add(static_cast<std::int64_t>(res.identified.size()));
    opt.metrics->counter("protocol.gen2.air_us").add(res.air_us);
    opt.metrics->counter("protocol.gen2.double_identifications")
        .add(res.double_identified ? 1 : 0);
  }
  return res;
}

}  // namespace rfid::protocol
