#include "protocol/tree_walking.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace rfid::protocol {

namespace {

/// Recursive walk over [prefix, bit position]; `ids` is the sorted slice of
/// EPCs matching the current prefix.
void walk(std::span<const std::uint64_t> ids, int bits_left,
          TreeWalkResult& res) {
  ++res.probes;  // the query for this prefix
  if (ids.empty()) {
    ++res.empties;
    return;
  }
  if (ids.size() == 1) {
    ++res.tags_identified;
    return;
  }
  // All remaining ids identical: indistinguishable tags; identify one and
  // stop splitting (the subtree would recurse forever otherwise).
  if (ids.front() == ids.back()) {
    assert(false && "duplicate EPCs cannot be arbitrated");
    ++res.tags_identified;
    return;
  }
  ++res.collisions;
  assert(bits_left > 0 && "distinct ids must differ within id_bits");
  const std::uint64_t mask = 1ull << (bits_left - 1);
  // ids sorted → the 0-branch is a prefix slice.
  const auto split = std::partition_point(
      ids.begin(), ids.end(),
      [mask](std::uint64_t v) { return (v & mask) == 0; });
  const auto zero_len = static_cast<std::size_t>(split - ids.begin());
  walk(ids.subspan(0, zero_len), bits_left - 1, res);
  walk(ids.subspan(zero_len), bits_left - 1, res);
}

}  // namespace

TreeWalkResult runTreeWalk(std::span<const std::uint64_t> epcs, int id_bits,
                           obs::MetricsRegistry* metrics,
                           obs::TraceSink* trace) {
  TreeWalkResult res;
  std::vector<std::uint64_t> sorted(epcs.begin(), epcs.end());
  std::sort(sorted.begin(), sorted.end());
  walk(sorted, id_bits, res);
  // The root probe asked "anyone there?", which is part of the protocol,
  // so probes ≥ 1 even for zero tags.
  if (metrics != nullptr) {
    metrics->counter("protocol.treewalk.probes").add(res.probes);
    metrics->counter("protocol.treewalk.collisions").add(res.collisions);
    metrics->counter("protocol.treewalk.empties").add(res.empties);
    metrics->counter("protocol.treewalk.tags_identified")
        .add(res.tags_identified);
  }
  if (trace != nullptr) {
    trace->instant(obs::EventKind::kFrame, "treewalk.done",
                   {{"probes", static_cast<double>(res.probes)},
                    {"collisions", static_cast<double>(res.collisions)},
                    {"empties", static_cast<double>(res.empties)},
                    {"identified", static_cast<double>(res.tags_identified)}});
  }
  return res;
}

}  // namespace rfid::protocol
