// gen2.h — EPC Class-1 Generation-2 inventory-round simulation (ROADMAP 4).
//
// The paper's macro time-slots assume every active reader can arbitrate its
// well-covered tags; `aloha.h` models that with idealized Vogt framed ALOHA.
// Real readers run EPC Gen2: a Query opens a frame of 2^Q micro-slots, every
// participating tag draws a slot counter, singleton slots are acknowledged,
// and the reader steers Q with the Q-algorithm (Qfp ± C per slot, Q =
// round(Qfp), QueryAdjust re-opens the frame when Q changes).  Tags carry a
// per-session inventoried flag (A/B) that an ack flips away from the round's
// target; in sessions S2/S3 the flag persists across macro-slots, so a tag
// inventoried once stays silent — and costs no air-time — until the flag
// decays.  This module simulates one inventory round deterministically from
// an explicit Rng, with two Q policies (the standard Q-algorithm and an
// AFSA-style frame-sized estimator), S0–S3 session persistence, A/B target
// selection, and a multi-packet-reception (MPR) mode where up to k colliding
// replies resolve in one micro-slot (Pudasaini-style capture receivers).
//
// Deviations from the EPC spec are deliberate and documented in
// docs/protocol.md: slots are occupancy-buckets rather than bit-level
// signalling, QueryAdjust aborts the current frame and redraws (QueryRep
// bookkeeping is folded into the per-slot costs), persistence is measured in
// macro-slots rather than seconds, and a round against an all-suppressed
// population costs nothing (the empty Query is not charged).
//
// Air-time is accounted in integer microseconds (stylized per-slot costs,
// configurable) so the seconds-denominated objective is bit-reproducible
// across platforms and thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/rng.h"

namespace rfid::protocol {

/// How the reader steers Q between frames.
enum class Gen2Policy {
  /// EPC Q-algorithm: Qfp += C on collision, -= C on empty, Q = round(Qfp);
  /// a Q change mid-frame issues QueryAdjust (unresolved tags redraw).
  kQAlgorithm,
  /// AFSA-style: after each frame, re-size to the improved frame-size
  /// estimate (backlog ≈ 2.39 tags per collision slot), Q = ceil(log2).
  kAfsa,
};

/// EPC sessions differ only in inventoried-flag persistence (see
/// `persistenceSlots`): S0 forgets every macro-slot, S1 holds one slot,
/// S2/S3 hold `Gen2Options::persistence` slots.
enum class Gen2Session { kS0, kS1, kS2, kS3 };

/// Inventory target: a round reads tags whose session flag matches.  An ack
/// flips the flag away from the target (A→B under target A, B→A under B).
enum class Gen2Target { kA, kB };

struct Gen2Options {
  /// Initial Q (frame size 2^Q), clamped to [0, 15].
  int q0 = 4;
  /// Q-algorithm step; the spec suggests C in [0.1, 0.5].
  double c = 0.3;
  Gen2Policy policy = Gen2Policy::kQAlgorithm;
  Gen2Session session = Gen2Session::kS2;
  /// Multi-packet reception: a micro-slot with at most `mpr_k` replies
  /// resolves all of them.  <= 1 is a plain single-reply Gen2 receiver.
  int mpr_k = 1;
  /// S2/S3 inventoried-flag persistence, in macro-slots.
  int persistence = 16;
  /// Alternate the round target A/B by macro-slot parity (dual-target
  /// inventorying).  Exercised by the round-level API and tests; the
  /// schedule co-simulation in slot_timing pins target A (see
  /// docs/protocol.md).
  bool alternate_target = false;
  /// Safety caps making every round finite regardless of configuration.
  std::int64_t max_micro_slots = std::int64_t{1} << 20;
  int max_frames = 4096;
  /// Stylized per-event air times, integer microseconds (docs/protocol.md).
  std::int64_t t_query_us = 400;
  std::int64_t t_empty_us = 150;
  std::int64_t t_collision_us = 600;
  std::int64_t t_success_us = 1200;
  /// Observability (optional).  With `metrics` the round adds the
  /// `protocol.gen2.*` counter family; with `trace` every frame emits a
  /// kFrame event.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

/// Macro-slots an inventoried flag survives after being set, per session.
int persistenceSlots(const Gen2Options& opt);

/// Round target for a macro-slot under `opt` (A unless alternating).
Gen2Target roundTarget(const Gen2Options& opt, int macro_slot);

/// Per-tag session flag state carried across macro-slots.  The co-simulator
/// owns one instance per run; round-level tests may drive it directly.
class Gen2SessionState {
 public:
  /// Grows to cover tag ids [0, num_tags); new tags start at flag A.
  void ensure(std::size_t num_tags);
  /// Applies persistence decay at the start of `macro_slot`: B flags set
  /// more than `persistenceSlots(opt)` slots ago revert to A.
  void startSlot(int macro_slot, const Gen2Options& opt);
  bool flagB(int t) const { return flag_b_[static_cast<std::size_t>(t)] != 0; }
  /// Ack under `target`: flips the flag away from the target and stamps the
  /// set-time for decay.
  void onAck(int t, int macro_slot, Gen2Target target);
  std::size_t size() const { return flag_b_.size(); }

 private:
  std::vector<char> flag_b_;  // 0 = A, 1 = B
  std::vector<int> stamp_;    // macro-slot when the flag was last set to B
};

struct Gen2RoundResult {
  /// Tags acknowledged this round, in identification order.
  std::vector<int> identified;
  /// Population members whose session flag suppressed their reply.
  int session_skips = 0;
  int frames = 0;
  /// Q re-sizes (mid-frame QueryAdjust aborts, or AFSA frame re-sizes).
  int adjusts = 0;
  std::int64_t micro_slots = 0;
  std::int64_t singles = 0;
  std::int64_t collisions = 0;
  std::int64_t empties = 0;
  /// Success slots that resolved more than one reply (MPR), and the tags
  /// resolved in them.
  std::int64_t mpr_slots = 0;
  std::int64_t mpr_resolved = 0;
  std::int64_t air_us = 0;
  /// False iff a safety cap fired with repliers still unresolved.
  bool completed = false;
  /// Internal self-check: a tag was acknowledged twice in this round.
  /// Always false unless the simulator itself is buggy — the mutation
  /// harness and the `--check` oracle key on it.
  bool double_identified = false;
};

/// Runs one inventory round: every tag in `population` whose session flag
/// matches the target participates; the round ends when all participants are
/// identified or a safety cap fires.  Flags in `session` are updated via
/// onAck; the caller applies `startSlot` decay once per macro-slot (not per
/// round).  Deterministic in (population order, session state, rng seed).
Gen2RoundResult runGen2Round(std::span<const int> population,
                             Gen2SessionState& session, int macro_slot,
                             Gen2Target target, workload::Rng& rng,
                             const Gen2Options& opt = {});

}  // namespace rfid::protocol
