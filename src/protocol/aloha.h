// aloha.h — framed slotted ALOHA tag arbitration (paper §II, TTc).
//
// Inside one scheduler time-slot, an active reader must arbitrate among the
// tags it well-covers (tag–tag collisions).  The paper delegates this to
// link-layer protocols and sizes the macro time-slot "such that each active
// reader is able to read at least one tag".  This module simulates framed
// slotted ALOHA (Vogt, Pervasive'02): each frame has F micro-slots, every
// unidentified tag answers in a uniformly random micro-slot, singleton
// slots identify a tag, and the reader re-sizes the next frame from what it
// observed — giving the slot-duration metrics used by bench/protocol_slots.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/rng.h"

namespace rfid::protocol {

struct AlohaOptions {
  int initial_frame = 16;
  int min_frame = 1;
  int max_frame = 1024;
  /// Safety cap on simulated frames.
  int max_frames = 100000;
  /// Observability (optional).  With `metrics` the run adds the counters
  /// `protocol.aloha.frames` / `.micro_slots` / `.collisions` / `.empties`
  /// / `.tags_identified`; with `trace` every frame emits a kFrame event
  /// (frame size, singles, collisions, empties, backlog).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

struct AlohaResult {
  int tags_identified = 0;
  int frames = 0;
  /// Total micro-slots elapsed (the slot-duration currency).
  std::int64_t micro_slots = 0;
  std::int64_t collisions = 0;
  std::int64_t empties = 0;
  bool completed = false;
};

/// Runs framed ALOHA until all `num_tags` tags are identified (or the frame
/// cap is hit).  Frame adaptation: the next frame size is the lowest-error
/// Vogt estimate — 2·(collision slots of the previous frame) — rounded up
/// to the next power of two and clamped to [max(1, min_frame),
/// max(1, max_frame)], so the frame size is always ≥ 1 regardless of
/// caller-supplied bounds (a zero estimate can otherwise propose F = 0 and
/// spin on empty frames until max_frames).
AlohaResult runAloha(int num_tags, workload::Rng& rng,
                     const AlohaOptions& opt = {});

}  // namespace rfid::protocol
