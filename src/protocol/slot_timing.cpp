#include "protocol/slot_timing.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>

#include "protocol/aloha.h"
#include "protocol/tree_walking.h"

namespace rfid::protocol {

namespace {

/// Bits needed to separate all EPCs in the system.
int epcBits(const core::System& sys) {
  std::uint64_t mx = 1;
  for (const core::Tag& t : sys.tags()) mx = std::max(mx, t.epc);
  return std::max(1, 64 - std::countl_zero(mx));
}

}  // namespace

SlotTimingResult timeSchedule(core::System& sys,
                              const sched::McsResult& schedule,
                              Arbitration arbitration, workload::Rng rng) {
  SlotTimingResult res;
  sys.resetReads();
  const int bits = epcBits(sys);

  for (const sched::SlotRecord& slot : schedule.schedule) {
    // Recover which tags each active reader serves this slot.
    const std::vector<int> served = sys.wellCoveredTags(slot.active);
    std::int64_t slot_max = 0;
    for (const int v : slot.active) {
      // Tags of v among the served set (exclusive coverage ⇒ unique owner).
      std::vector<std::uint64_t> epcs;
      for (const int t : sys.coverage(v)) {
        if (std::binary_search(served.begin(), served.end(), t)) {
          epcs.push_back(sys.tag(t).epc);
        }
      }
      if (epcs.empty()) continue;
      std::int64_t cost = 0;
      if (arbitration == Arbitration::kAloha) {
        workload::Rng reader_rng = rng.split("aloha", static_cast<std::uint64_t>(
            res.macro_slots * 1000 + v));
        cost = runAloha(static_cast<int>(epcs.size()), reader_rng).micro_slots;
      } else {
        cost = runTreeWalk(epcs, bits).probes;
      }
      slot_max = std::max(slot_max, cost);
      res.micro_slots_serial += cost;
    }
    res.micro_slots += slot_max;
    ++res.macro_slots;
    res.tags_read += static_cast<int>(served.size());
    sys.markRead(served);
  }
  return res;
}

const char* linkName(Link link) {
  switch (link) {
    case Link::kUnit:
      return "unit";
    case Link::kAloha:
      return "aloha";
    case Link::kTreeWalk:
      return "tree";
    case Link::kGen2:
      return "gen2";
  }
  return "?";
}

bool parseLink(std::string_view text, Link& out) {
  if (text == "unit") {
    out = Link::kUnit;
  } else if (text == "aloha") {
    out = Link::kAloha;
  } else if (text == "tree") {
    out = Link::kTreeWalk;
  } else if (text == "gen2") {
    out = Link::kGen2;
  } else {
    return false;
  }
  return true;
}

namespace {

LinkTimingResult timeScheduleGen2(core::System& sys,
                                  const sched::McsResult& schedule,
                                  const LinkOptions& opt, workload::Rng& rng) {
  LinkTimingResult res;
  res.link = Link::kGen2;
  sys.resetReads();

  const std::size_t n = static_cast<std::size_t>(sys.numTags());
  // The replay never marks reads on `sys`, so wellCoveredTags yields each
  // slot's *physical* population (stale repliers included); the schedule's
  // own read-state is tracked locally to tell fresh reads from stale ones.
  std::vector<char> mcs_read(n, 0);
  std::vector<int> last_ident(n, std::numeric_limits<int>::min() / 2);
  std::vector<int> owner_pos(static_cast<std::size_t>(sys.numReaders()), -1);
  Gen2SessionState session;
  session.ensure(n);

  Gen2Options round_opt = opt.gen2;
  round_opt.metrics = nullptr;  // aggregate once below
  const int persist = persistenceSlots(round_opt);
  const bool persistence_check =
      !round_opt.alternate_target && (round_opt.session == Gen2Session::kS2 ||
                                      round_opt.session == Gen2Session::kS3);

  std::vector<std::vector<int>> pops;
  const auto fail = [&res](const std::string& why) {
    if (res.check_ok) {
      res.check_ok = false;
      res.check_detail = why;
    }
  };

  int slot_idx = 0;
  for (const sched::SlotRecord& slot : schedule.schedule) {
    session.startSlot(slot_idx, round_opt);
    // The co-simulation pins target A: alternating targets would suppress
    // fresh tags every other macro-slot, which the covering schedule's
    // read requirement cannot absorb (docs/protocol.md).
    const Gen2Target target = Gen2Target::kA;

    const std::vector<int> phys = sys.wellCoveredTags(slot.active);
    // Group the physical population by its unique radiating owner.
    pops.assign(slot.active.size(), {});
    for (std::size_t i = 0; i < slot.active.size(); ++i) {
      owner_pos[static_cast<std::size_t>(slot.active[i])] =
          static_cast<int>(i);
    }
    for (const int t : phys) {
      for (const int v : sys.coverers(t)) {
        const int pos = owner_pos[static_cast<std::size_t>(v)];
        if (pos >= 0) {
          pops[static_cast<std::size_t>(pos)].push_back(t);
          break;  // exactly-one coverage ⇒ unique active coverer
        }
      }
    }
    for (const int v : slot.active) {
      owner_pos[static_cast<std::size_t>(v)] = -1;
    }

    std::int64_t slot_max_us = 0;
    std::int64_t slot_max_micro = 0;
    int fresh_this_slot = 0;
    for (std::size_t i = 0; i < slot.active.size(); ++i) {
      if (pops[i].empty()) continue;
      const int v = slot.active[i];
      workload::Rng reader_rng =
          rng.split("gen2.slot", static_cast<std::uint64_t>(slot_idx))
              .split("gen2.reader", static_cast<std::uint64_t>(v));
      const Gen2RoundResult r = runGen2Round(pops[i], session, slot_idx,
                                             target, reader_rng, round_opt);
      slot_max_us = std::max(slot_max_us, r.air_us);
      slot_max_micro = std::max(slot_max_micro, r.micro_slots);
      res.micro_slots_serial += r.micro_slots;
      res.air_us_serial += r.air_us;
      res.frames += r.frames;
      res.session_skips += r.session_skips;
      res.identified += static_cast<std::int64_t>(r.identified.size());
      if (r.double_identified) {
        ++res.double_identifications;
        std::ostringstream os;
        os << "gen2: reader " << v << " acknowledged a tag twice in one "
           << "round (slot " << slot_idx << ")";
        fail(os.str());
      }
      if (!r.completed) {
        std::ostringstream os;
        os << "gen2: reader " << v << " round incomplete at slot " << slot_idx
           << " (safety cap hit with repliers unresolved)";
        fail(os.str());
      }
      for (const int t : r.identified) {
        const auto ti = static_cast<std::size_t>(t);
        if (persistence_check && slot_idx - last_ident[ti] <= persist) {
          std::ostringstream os;
          os << "gen2: tag " << t << " re-identified at slot " << slot_idx
             << ", " << (slot_idx - last_ident[ti])
             << " slot(s) after its last read, inside the session "
             << "persistence window (" << persist << ")";
          fail(os.str());
        }
        last_ident[ti] = slot_idx;
        if (mcs_read[ti] != 0) {
          ++res.stale_repliers;
        } else {
          mcs_read[ti] = 1;
          ++fresh_this_slot;
        }
      }
    }
    if (fresh_this_slot != slot.tags_read) {
      std::ostringstream os;
      os << "gen2: slot " << slot_idx << " identified " << fresh_this_slot
         << " fresh tag(s) but the schedule recorded " << slot.tags_read;
      fail(os.str());
    }
    res.air_us += slot_max_us;
    res.micro_slots += slot_max_micro;
    res.tags_read += fresh_this_slot;
    ++res.macro_slots;
    ++slot_idx;
  }
  // Leave `sys` fully re-marked, matching the timeSchedule contract.
  for (std::size_t t = 0; t < n; ++t) {
    if (mcs_read[t] != 0) sys.markRead(static_cast<int>(t));
  }

  if (opt.metrics != nullptr) {
    obs::MetricsRegistry& m = *opt.metrics;
    m.counter("protocol.gen2.macro_slots").add(res.macro_slots);
    m.counter("protocol.gen2.frames").add(res.frames);
    m.counter("protocol.gen2.micro_slots").add(res.micro_slots_serial);
    m.counter("protocol.gen2.air_us").add(res.air_us);
    m.counter("protocol.gen2.air_us_serial").add(res.air_us_serial);
    m.counter("protocol.gen2.tags_identified").add(res.identified);
    m.counter("protocol.gen2.fresh_reads").add(res.tags_read);
    m.counter("protocol.gen2.session_skips").add(res.session_skips);
    m.counter("protocol.gen2.stale_repliers").add(res.stale_repliers);
    m.counter("protocol.gen2.double_identifications")
        .add(res.double_identifications);
  }
  return res;
}

}  // namespace

LinkTimingResult timeScheduleLink(core::System& sys,
                                  const sched::McsResult& schedule,
                                  const LinkOptions& opt, workload::Rng rng) {
  if (opt.link == Link::kGen2) {
    return timeScheduleGen2(sys, schedule, opt, rng);
  }
  LinkTimingResult res;
  res.link = opt.link;
  if (opt.link == Link::kUnit) {
    // The paper's unit-cost slot: one micro-slot per macro-slot.  Replay
    // only to recover the tag count; no link state, no air-time model.
    sys.resetReads();
    for (const sched::SlotRecord& slot : schedule.schedule) {
      const std::vector<int> served = sys.wellCoveredTags(slot.active);
      res.tags_read += static_cast<int>(served.size());
      res.micro_slots += 1;
      res.micro_slots_serial += static_cast<std::int64_t>(slot.active.size());
      ++res.macro_slots;
      sys.markRead(served);
    }
    return res;
  }
  const Arbitration arb = opt.link == Link::kAloha ? Arbitration::kAloha
                                                   : Arbitration::kTreeWalk;
  const SlotTimingResult st = timeSchedule(sys, schedule, arb, rng);
  res.macro_slots = st.macro_slots;
  res.micro_slots = st.micro_slots;
  res.micro_slots_serial = st.micro_slots_serial;
  res.tags_read = st.tags_read;
  res.air_us = st.micro_slots * opt.t_micro_us;
  res.air_us_serial = st.micro_slots_serial * opt.t_micro_us;
  return res;
}

Gen2LinkTimer::Gen2LinkTimer(const core::System& sys, const Gen2Options& opt,
                             workload::Rng rng)
    : sys_(&sys), opt_(opt), rng_(rng) {
  opt_.metrics = nullptr;  // aggregated via flushMetrics
  opt_.trace = nullptr;
  res_.link = Link::kGen2;
  owner_pos_.assign(static_cast<std::size_t>(sys.numReaders()), -1);
  session_.ensure(static_cast<std::size_t>(sys.numTags()));
}

void Gen2LinkTimer::onSlot(int slot, std::span<const int> active,
                           std::span<const int> served) {
  session_.startSlot(slot, opt_);
  pops_.assign(active.size(), {});
  for (std::size_t i = 0; i < active.size(); ++i) {
    owner_pos_[static_cast<std::size_t>(active[i])] = static_cast<int>(i);
  }
  for (const int t : served) {
    for (const int v : sys_->coverers(t)) {
      const int pos = owner_pos_[static_cast<std::size_t>(v)];
      if (pos >= 0) {
        pops_[static_cast<std::size_t>(pos)].push_back(t);
        break;  // exactly-one coverage ⇒ unique active coverer
      }
    }
  }
  for (const int v : active) owner_pos_[static_cast<std::size_t>(v)] = -1;

  std::int64_t slot_max_us = 0;
  std::int64_t slot_max_micro = 0;
  std::int64_t identified = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    if (pops_[i].empty()) continue;
    const int v = active[i];
    workload::Rng reader_rng =
        rng_.split("gen2.slot", static_cast<std::uint64_t>(slot))
            .split("gen2.reader", static_cast<std::uint64_t>(v));
    const Gen2RoundResult r = runGen2Round(pops_[i], session_, slot,
                                           Gen2Target::kA, reader_rng, opt_);
    slot_max_us = std::max(slot_max_us, r.air_us);
    slot_max_micro = std::max(slot_max_micro, r.micro_slots);
    res_.micro_slots_serial += r.micro_slots;
    res_.air_us_serial += r.air_us;
    res_.frames += r.frames;
    res_.session_skips += r.session_skips;
    identified += static_cast<std::int64_t>(r.identified.size());
    if (r.double_identified) ++res_.double_identifications;
    if ((r.double_identified || !r.completed) && res_.check_ok) {
      std::ostringstream os;
      os << "gen2: reader " << v << " at stream slot " << slot << " "
         << (r.double_identified ? "acknowledged a tag twice in one round"
                                 : "round incomplete (safety cap hit)");
      res_.check_ok = false;
      res_.check_detail = os.str();
    }
  }
  if (identified != static_cast<std::int64_t>(served.size()) &&
      res_.check_ok) {
    std::ostringstream os;
    os << "gen2: stream slot " << slot << " identified " << identified
       << " tag(s) but the driver served " << served.size();
    res_.check_ok = false;
    res_.check_detail = os.str();
  }
  res_.identified += identified;
  res_.tags_read += static_cast<int>(served.size());
  res_.air_us += slot_max_us;
  res_.micro_slots += slot_max_micro;
  ++res_.macro_slots;
}

void Gen2LinkTimer::flushMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  obs::MetricsRegistry& m = *metrics;
  m.counter("protocol.gen2.macro_slots").add(res_.macro_slots);
  m.counter("protocol.gen2.frames").add(res_.frames);
  m.counter("protocol.gen2.micro_slots").add(res_.micro_slots_serial);
  m.counter("protocol.gen2.air_us").add(res_.air_us);
  m.counter("protocol.gen2.air_us_serial").add(res_.air_us_serial);
  m.counter("protocol.gen2.tags_identified").add(res_.identified);
  m.counter("protocol.gen2.fresh_reads").add(res_.tags_read);
  m.counter("protocol.gen2.session_skips").add(res_.session_skips);
  m.counter("protocol.gen2.double_identifications")
      .add(res_.double_identifications);
}

}  // namespace rfid::protocol
