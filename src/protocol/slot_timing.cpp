#include "protocol/slot_timing.h"

#include <algorithm>
#include <bit>

#include "protocol/aloha.h"
#include "protocol/tree_walking.h"

namespace rfid::protocol {

namespace {

/// Bits needed to separate all EPCs in the system.
int epcBits(const core::System& sys) {
  std::uint64_t mx = 1;
  for (const core::Tag& t : sys.tags()) mx = std::max(mx, t.epc);
  return std::max(1, 64 - std::countl_zero(mx));
}

}  // namespace

SlotTimingResult timeSchedule(core::System& sys,
                              const sched::McsResult& schedule,
                              Arbitration arbitration, workload::Rng rng) {
  SlotTimingResult res;
  sys.resetReads();
  const int bits = epcBits(sys);

  for (const sched::SlotRecord& slot : schedule.schedule) {
    // Recover which tags each active reader serves this slot.
    const std::vector<int> served = sys.wellCoveredTags(slot.active);
    std::int64_t slot_max = 0;
    for (const int v : slot.active) {
      // Tags of v among the served set (exclusive coverage ⇒ unique owner).
      std::vector<std::uint64_t> epcs;
      for (const int t : sys.coverage(v)) {
        if (std::binary_search(served.begin(), served.end(), t)) {
          epcs.push_back(sys.tag(t).epc);
        }
      }
      if (epcs.empty()) continue;
      std::int64_t cost = 0;
      if (arbitration == Arbitration::kAloha) {
        workload::Rng reader_rng = rng.split("aloha", static_cast<std::uint64_t>(
            res.macro_slots * 1000 + v));
        cost = runAloha(static_cast<int>(epcs.size()), reader_rng).micro_slots;
      } else {
        cost = runTreeWalk(epcs, bits).probes;
      }
      slot_max = std::max(slot_max, cost);
      res.micro_slots_serial += cost;
    }
    res.micro_slots += slot_max;
    ++res.macro_slots;
    res.tags_read += static_cast<int>(served.size());
    sys.markRead(served);
  }
  return res;
}

}  // namespace rfid::protocol
