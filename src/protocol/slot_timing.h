// slot_timing.h — macro-slot duration accounting (paper §III).
//
// The paper sizes the macro time-slot so every active reader can serve at
// least one well-covered tag, then measures schedules in slots.  This
// adapter descends one level: it replays a covering schedule and charges
// each slot the micro-slots its *slowest* active reader needs to arbitrate
// its well-covered tags (readers run in parallel within a slot; TTc
// arbitration is per-reader).  That converts "number of slots" into the
// physical air-time the installation would actually spend — the extension
// experiment bench/protocol_slots reports both.
#pragma once

#include <cstdint>

#include "core/system.h"
#include "sched/mcs.h"
#include "workload/rng.h"

namespace rfid::protocol {

enum class Arbitration { kAloha, kTreeWalk };

struct SlotTimingResult {
  int macro_slots = 0;
  /// Σ over slots of max-over-active-readers arbitration cost.
  std::int64_t micro_slots = 0;
  /// Σ over slots and readers (total energy/air-time if slots were serial).
  std::int64_t micro_slots_serial = 0;
  int tags_read = 0;
};

/// Replays `schedule` on a fresh copy of the read-state of `sys` (the
/// system is reset and re-marked internally, restoring the caller's state
/// afterwards is the caller's business — pass a scratch copy).
SlotTimingResult timeSchedule(core::System& sys,
                              const sched::McsResult& schedule,
                              Arbitration arbitration, workload::Rng rng);

}  // namespace rfid::protocol
