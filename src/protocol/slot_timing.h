// slot_timing.h — macro-slot duration accounting (paper §III).
//
// The paper sizes the macro time-slot so every active reader can serve at
// least one well-covered tag, then measures schedules in slots.  This
// adapter descends one level: it replays a covering schedule and charges
// each slot the micro-slots its *slowest* active reader needs to arbitrate
// its well-covered tags (readers run in parallel within a slot; TTc
// arbitration is per-reader).  That converts "number of slots" into the
// physical air-time the installation would actually spend — the extension
// experiment bench/protocol_slots reports both.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/system.h"
#include "protocol/gen2.h"
#include "sched/mcs.h"
#include "workload/rng.h"

namespace rfid::protocol {

enum class Arbitration { kAloha, kTreeWalk };

struct SlotTimingResult {
  int macro_slots = 0;
  /// Σ over slots of max-over-active-readers arbitration cost.
  std::int64_t micro_slots = 0;
  /// Σ over slots and readers (total energy/air-time if slots were serial).
  std::int64_t micro_slots_serial = 0;
  int tags_read = 0;
};

/// Replays `schedule` on a fresh copy of the read-state of `sys` (the
/// system is reset and re-marked internally, restoring the caller's state
/// afterwards is the caller's business — pass a scratch copy).
SlotTimingResult timeSchedule(core::System& sys,
                              const sched::McsResult& schedule,
                              Arbitration arbitration, workload::Rng rng);

// ---------------------------------------------------------------------------
// Link-layer co-simulation (ROADMAP 4): replay a covering schedule under a
// selectable link model and convert it into physical air-time.
//
// `kUnit` is the paper's unit-cost slot (one micro-slot per macro-slot) and
// the CLI default — it must not perturb anything.  `kAloha`/`kTreeWalk`
// delegate to `timeSchedule` above (fresh tags only, micro-slot currency
// converted at `t_micro_us`).  `kGen2` descends further: each macro-slot's
// duration is the max over active readers of their Gen2 arbitration cost on
// their *physical* well-covered population — including tags the schedule
// already read, because whether those stale repliers cost air-time is
// exactly what sessions decide.  Session flag state carries across
// macro-slots in one `Gen2SessionState`, so a tag inventoried under S2/S3
// stays silent (a "session skip") until its flag decays.
//
// The Gen2 replay self-checks three invariants and reports them through
// `check_ok`/`check_detail` (the CLI escalates to exit 5 under `--check`):
//   1. every tag the schedule credits to a slot is identified in that slot,
//      and the per-slot fresh-read count matches the recorded SlotRecord;
//   2. no round acknowledges the same tag twice;
//   3. a tag is never re-identified within its session persistence window
//      (vacuous for S0/S1 whose windows are 0/1 macro-slots).
// ---------------------------------------------------------------------------

enum class Link { kUnit, kAloha, kTreeWalk, kGen2 };

const char* linkName(Link link);
/// Parses "unit" / "aloha" / "tree" / "gen2"; returns false on anything else.
bool parseLink(std::string_view text, Link& out);

struct LinkOptions {
  Link link = Link::kUnit;
  /// Gen2 model parameters (metrics/trace members are ignored; pass the
  /// registry below so the aggregate is flushed once per replay).
  Gen2Options gen2;
  /// Micro-slot → microseconds conversion for the aloha/tree links.
  std::int64_t t_micro_us = 250;
  /// Optional: receives the `protocol.gen2.*` counter family (gen2 link).
  obs::MetricsRegistry* metrics = nullptr;
};

struct LinkTimingResult {
  Link link = Link::kUnit;
  int macro_slots = 0;
  /// Σ over slots of max-over-active-readers cost / air-time (readers run
  /// in parallel within a macro-slot).
  std::int64_t micro_slots = 0;
  std::int64_t air_us = 0;
  /// Σ over slots and readers (serial energy/air-time).
  std::int64_t micro_slots_serial = 0;
  std::int64_t air_us_serial = 0;
  /// Fresh tags read (matches the schedule's tags_read on a clean replay).
  int tags_read = 0;
  /// Gen2 only: totals across all rounds.
  std::int64_t frames = 0;
  std::int64_t identified = 0;      // incl. stale re-identifications
  std::int64_t session_skips = 0;   // replies suppressed by session flags
  std::int64_t stale_repliers = 0;  // already-read tags that replied
  /// Rounds whose internal self-check saw a tag acked twice (always 0 on a
  /// healthy build — the zero-stays-zero bench gate pins it).
  std::int64_t double_identifications = 0;
  bool check_ok = true;
  std::string check_detail;
};

/// Replays `schedule` under `opt.link`.  Resets the read-state of `sys` and
/// leaves it fully re-marked (same contract as timeSchedule — pass a scratch
/// copy if the caller still needs its read-state).  Deterministic in
/// (schedule, deployment, rng seed); independent of scheduler thread count.
/// Fault-injected runs record *proposed* active sets, which a replay cannot
/// re-execute faithfully — callers gate on a fault-free run (the CLI rejects
/// `--link` + `--fault-*`).
LinkTimingResult timeScheduleLink(core::System& sys,
                                  const sched::McsResult& schedule,
                                  const LinkOptions& opt, workload::Rng rng);

/// Online Gen2 co-simulation for the streaming driver: wire `onSlot` to
/// StreamingOptions::on_commit and every committed busy slot is arbitrated
/// as it lands.  Streamed populations are the slot's *served* tags (all
/// fresh — the driver marks them read, so none ever replies twice), which
/// is the honest online model: the physical population of a churning slot
/// cannot be replayed after the fact.  Session flags still carry across
/// slots; totals and self-check verdicts accumulate in result().  The
/// observer never mutates the system, and resume replays re-feed it
/// identically, so totals match an uninterrupted run.
class Gen2LinkTimer {
 public:
  Gen2LinkTimer(const core::System& sys, const Gen2Options& opt,
                workload::Rng rng);
  void onSlot(int slot, std::span<const int> active,
              std::span<const int> served);
  const LinkTimingResult& result() const { return res_; }
  /// Flushes the protocol.gen2.* counter aggregate (call once, post-run).
  void flushMetrics(obs::MetricsRegistry* metrics) const;

 private:
  const core::System* sys_;
  Gen2Options opt_;
  workload::Rng rng_;
  Gen2SessionState session_;
  std::vector<int> owner_pos_;
  std::vector<std::vector<int>> pops_;
  LinkTimingResult res_;
};

}  // namespace rfid::protocol
