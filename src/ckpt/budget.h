// budget.h — bounded-time execution: deadlines, slot caps, cooperative
// cancellation (docs/recovery.md).
//
// The MCS meta-loop is the longest-running artifact in the repo; a slow
// configuration used to hang a CI job until something SIGKILLed it mid-write.
// A RunBudget replaces that with the *anytime contract*: the driver checks
// the budget at every slot boundary and every one-shot scheduler polls the
// shared CancelToken inside its own search loops, so an expiring run stops
// at the next checkpoint and returns a valid best-so-far result marked
// `interrupted` instead of dying on a signal.
//
// Determinism discipline: the budget decides only *when to stop*, never what
// is computed.  A slot whose schedule() call observed a cancellation is
// discarded, not committed, so the committed prefix of an interrupted run is
// always a prefix of the uninterrupted trajectory — which is what makes
// deadline-interrupted checkpoints resumable to a bit-identical final
// result (src/ckpt/journal.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rfid::ckpt {

/// Cooperative cancellation flag shared between a driver and its
/// schedulers.  Becomes "cancelled" either explicitly (cancel()) or
/// implicitly once an armed wall-clock deadline passes; polling is cheap
/// enough for inner search loops (an atomic load, plus one steady_clock
/// read when a deadline is armed).
class CancelToken {
 public:
  /// Explicit cancellation (supervisor thread, signal bridge, tests).
  void cancel() { flag_.store(true, std::memory_order_relaxed); }

  /// Arms a wall-clock deadline; cancelled() reports true once the steady
  /// clock passes it.
  void setDeadline(std::chrono::steady_clock::time_point tp) {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }
  void clearDeadline() { has_deadline_.store(false, std::memory_order_relaxed); }

  bool deadlineExpired() const {
    if (!has_deadline_.load(std::memory_order_acquire)) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline_ns_.load(std::memory_order_relaxed);
  }

  bool cancelled() const {
    return flag_.load(std::memory_order_relaxed) || deadlineExpired();
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<std::int64_t> deadline_ns_{0};
};

/// Why a budgeted run must stop (kNone = keep going).
enum class BudgetStop {
  kNone,
  kSlotCap,    // committed-slot cap reached
  kDeadline,   // wall-clock deadline passed
  kCancelled,  // explicit CancelToken::cancel()
};

const char* budgetStopName(BudgetStop s);

/// Wall-clock deadline + slot cap for one MCS run.  Thread the token into
/// the schedulers (OneShotScheduler::attachCancel) and hand the budget to
/// the driver (McsOptions::budget); both are optional and nullptr-safe.
class RunBudget {
 public:
  /// Arms a deadline `from_now` milliseconds ahead (<= 0: fires at the
  /// first checkpoint — useful for smoke-testing the interrupted path).
  void setDeadline(std::chrono::milliseconds from_now) {
    token_.setDeadline(std::chrono::steady_clock::now() + from_now);
    has_deadline_ = true;
  }
  /// Caps the number of *committed* slots (<= 0 disables the cap).
  void setSlotCap(int cap) { slot_cap_ = cap; }
  int slotCap() const { return slot_cap_; }

  bool armed() const { return has_deadline_ || slot_cap_ > 0; }

  CancelToken& token() { return token_; }
  const CancelToken& token() const { return token_; }

  /// Classifies the stop condition given `slots_done` committed slots.
  /// The slot cap is checked first so cap-limited runs stop at a
  /// deterministic slot regardless of wall-clock jitter.
  BudgetStop charge(int slots_done) const {
    if (slot_cap_ > 0 && slots_done >= slot_cap_) return BudgetStop::kSlotCap;
    if (token_.deadlineExpired()) return BudgetStop::kDeadline;
    if (token_.cancelled()) return BudgetStop::kCancelled;
    return BudgetStop::kNone;
  }

 private:
  CancelToken token_;
  bool has_deadline_ = false;
  int slot_cap_ = 0;
};

}  // namespace rfid::ckpt
