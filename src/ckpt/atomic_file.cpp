#include "ckpt/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace rfid::ckpt {

namespace {

void setErr(std::string* err, const char* step) {
  if (err != nullptr) {
    *err = std::string(step) + ": " + std::strerror(errno);
  }
}

bool writeAll(int fd, std::string_view content) {
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool writeFileAtomic(const std::string& path, std::string_view content,
                     std::string* err) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    setErr(err, "open tmp");
    return false;
  }
  if (!writeAll(fd, content) || ::fsync(fd) != 0) {
    setErr(err, "write tmp");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    setErr(err, "close tmp");
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    setErr(err, "rename");
    ::unlink(tmp.c_str());
    return false;
  }
  // Persist the rename: fsync the containing directory.  Failure here is
  // not a torn file (the rename already happened), so it is best-effort.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace rfid::ckpt
