#include "ckpt/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/atomic_file.h"

namespace rfid::ckpt {

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

constexpr char kHexDigit[] = "0123456789abcdef";

void appendHex64(std::string& out, std::uint64_t v) {
  char buf[16];
  int n = 0;
  do {
    buf[n++] = kHexDigit[v & 0xF];
    v >>= 4;
  } while (v != 0);
  while (n > 0) out.push_back(buf[--n]);
}

void appendHex32Fixed(std::string& out, std::uint32_t v) {
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(kHexDigit[(v >> shift) & 0xF]);
  }
}

void appendIntArray(std::string& out, const std::vector<int>& v) {
  out.push_back('[');
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(v[i]);
  }
  out.push_back(']');
}

/// Seals `body` (which must end with the comma before the crc field) into
/// the final record line.
std::string seal(std::string body) {
  const std::uint32_t c = crc32(body);
  body += "\"crc\":\"";
  appendHex32Fixed(body, c);
  body += "\"}";
  return body;
}

/// Strict cursor over one record's body — the decoder accepts exactly the
/// canonical serialization and nothing else, which is precisely the
/// fail-closed behavior the journal wants: any byte out of place is
/// corruption.
struct Cur {
  std::string_view s;
  std::size_t i = 0;

  bool lit(std::string_view l) {
    if (s.size() - i < l.size() || s.compare(i, l.size(), l) != 0) return false;
    i += l.size();
    return true;
  }

  bool u64(std::uint64_t* out) {
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    std::uint64_t v = 0;
    std::size_t digits = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      if (++digits > 20) return false;
      const std::uint64_t d = static_cast<std::uint64_t>(s[i] - '0');
      if (v > (UINT64_MAX - d) / 10) return false;
      v = v * 10 + d;
      ++i;
    }
    *out = v;
    return true;
  }

  bool i32(int* out) {
    std::uint64_t v = 0;
    if (!u64(&v) || v > static_cast<std::uint64_t>(INT32_MAX)) return false;
    *out = static_cast<int>(v);
    return true;
  }

  bool hex64(std::uint64_t* out) {
    std::uint64_t v = 0;
    std::size_t digits = 0;
    while (i < s.size()) {
      const char c = s[i];
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else break;
      if (++digits > 16) return false;
      v = (v << 4) | static_cast<std::uint64_t>(d);
      ++i;
    }
    if (digits == 0) return false;
    *out = v;
    return true;
  }

  bool boolean01(bool* out) {
    if (i >= s.size() || (s[i] != '0' && s[i] != '1')) return false;
    *out = s[i] == '1';
    ++i;
    return true;
  }

  bool intArray(std::vector<int>* out) {
    if (!lit("[")) return false;
    out->clear();
    if (lit("]")) return true;
    while (true) {
      int v = 0;
      if (!i32(&v)) return false;
      out->push_back(v);
      if (lit("]")) return true;
      if (!lit(",")) return false;
    }
  }

  /// Unescaped string field content up to the closing quote.
  bool str(std::string* out) {
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') return false;  // canonical form never escapes
      out->push_back(s[i]);
      ++i;
    }
    return i < s.size();  // stopped at '"', caller consumes it via lit
  }

  bool done() const { return i == s.size(); }
};

/// Splits `line` into (body, crc) and verifies the checksum.  The sealed
/// form is  <body>"crc":"XXXXXXXX"}  with the CRC computed over <body>.
bool unseal(std::string_view line, std::string_view* body) {
  constexpr std::size_t kTail = 7 + 8 + 2;  // "crc":" + hex8 + "}
  if (line.size() < kTail) return false;
  const std::string_view tail = line.substr(line.size() - kTail);
  if (tail.compare(0, 7, "\"crc\":\"") != 0 ||
      tail.compare(15, 2, "\"}") != 0) {
    return false;
  }
  std::uint32_t stored = 0;
  for (int k = 0; k < 8; ++k) {
    const char c = tail[7 + static_cast<std::size_t>(k)];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    stored = (stored << 4) | static_cast<std::uint32_t>(d);
  }
  *body = line.substr(0, line.size() - kTail);
  return crc32(*body) == stored;
}

}  // namespace

std::string encodeHeader(const JournalHeader& h) {
  std::string b = "{\"type\":\"hdr\",\"v\":";
  b += std::to_string(h.version);
  b += ",\"algo\":\"";
  b += h.algo;
  b += "\",\"seed\":";
  b += std::to_string(h.seed);
  b += ",\"dep\":\"";
  appendHex64(b, h.deployment_hash);
  b += "\",\"fault\":\"";
  appendHex64(b, h.fault_hash);
  b += "\",";
  return seal(std::move(b));
}

bool decodeHeader(std::string_view line, JournalHeader* out) {
  std::string_view body;
  if (!unseal(line, &body)) return false;
  Cur c{body};
  JournalHeader h;
  if (!c.lit("{\"type\":\"hdr\",\"v\":") || !c.i32(&h.version)) return false;
  if (!c.lit(",\"algo\":\"") || !c.str(&h.algo)) return false;
  if (!c.lit("\",\"seed\":") || !c.u64(&h.seed)) return false;
  if (!c.lit(",\"dep\":\"") || !c.hex64(&h.deployment_hash)) return false;
  if (!c.lit("\",\"fault\":\"") || !c.hex64(&h.fault_hash)) return false;
  if (!c.lit("\",") || !c.done()) return false;
  *out = h;
  return true;
}

std::string encodeSlot(const SlotEntry& e) {
  std::string b = "{\"type\":\"slot\",\"q\":";
  b += std::to_string(e.slot);
  b += ",\"active\":";
  appendIntArray(b, e.active);
  b += ",\"served\":";
  appendIntArray(b, e.served);
  b += ",\"crashed\":";
  b += std::to_string(e.crashed);
  b += ",\"replanned\":";
  b += std::to_string(e.replanned);
  b += ",\"missed\":";
  b += std::to_string(e.missed);
  b += ",\"ideal\":";
  b += std::to_string(e.ideal);
  b += ",\"faulty\":";
  b += e.faulty ? '1' : '0';
  b += ",\"lost\":";
  b += e.lost ? '1' : '0';
  b += ",\"epoch\":";
  b += std::to_string(e.epoch);
  b += ",\"fp\":\"";
  appendHex64(b, e.fp);
  b += "\",";
  return seal(std::move(b));
}

bool decodeSlot(std::string_view line, SlotEntry* out) {
  std::string_view body;
  if (!unseal(line, &body)) return false;
  Cur c{body};
  SlotEntry e;
  if (!c.lit("{\"type\":\"slot\",\"q\":") || !c.i32(&e.slot)) return false;
  if (!c.lit(",\"active\":") || !c.intArray(&e.active)) return false;
  if (!c.lit(",\"served\":") || !c.intArray(&e.served)) return false;
  if (!c.lit(",\"crashed\":") || !c.i32(&e.crashed)) return false;
  if (!c.lit(",\"replanned\":") || !c.i32(&e.replanned)) return false;
  if (!c.lit(",\"missed\":") || !c.i32(&e.missed)) return false;
  if (!c.lit(",\"ideal\":") || !c.i32(&e.ideal)) return false;
  if (!c.lit(",\"faulty\":") || !c.boolean01(&e.faulty)) return false;
  if (!c.lit(",\"lost\":") || !c.boolean01(&e.lost)) return false;
  if (!c.lit(",\"epoch\":") || !c.i32(&e.epoch)) return false;
  if (!c.lit(",\"fp\":\"") || !c.hex64(&e.fp)) return false;
  if (!c.lit("\",") || !c.done()) return false;
  *out = std::move(e);
  return true;
}

std::string encodeSnapshot(const Snapshot& s, std::uint64_t deployment_hash) {
  std::string b = "{\"type\":\"snap\",\"v\":1,\"slot\":";
  b += std::to_string(s.slot);
  b += ",\"dep\":\"";
  appendHex64(b, deployment_hash);
  b += "\",\"tags\":";
  b += std::to_string(s.read.size());
  b += ",\"read\":\"";
  // Pack the bitmap 4 tags per hex nibble: tag t lives in nibble t/4,
  // bit t%4 — compact, byte-exact, endian-free.
  for (std::size_t i = 0; i < s.read.size(); i += 4) {
    int nib = 0;
    for (std::size_t k = 0; k < 4 && i + k < s.read.size(); ++k) {
      if (s.read[i + k] != 0) nib |= 1 << k;
    }
    b.push_back(kHexDigit[nib]);
  }
  b += "\",";
  return seal(std::move(b));
}

bool decodeSnapshot(std::string_view text, Snapshot* out,
                    std::uint64_t* deployment_hash) {
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  std::string_view body;
  if (!unseal(text, &body)) return false;
  Cur c{body};
  Snapshot s;
  std::uint64_t dep = 0, tags = 0;
  if (!c.lit("{\"type\":\"snap\",\"v\":1,\"slot\":") || !c.i32(&s.slot)) {
    return false;
  }
  if (!c.lit(",\"dep\":\"") || !c.hex64(&dep)) return false;
  if (!c.lit("\",\"tags\":") || !c.u64(&tags)) return false;
  if (tags > (1ull << 31)) return false;
  if (!c.lit(",\"read\":\"")) return false;
  s.read.assign(tags, 0);
  for (std::size_t i = 0; i < tags; i += 4) {
    if (c.i >= c.s.size()) return false;
    const char ch = c.s[c.i++];
    int nib;
    if (ch >= '0' && ch <= '9') nib = ch - '0';
    else if (ch >= 'a' && ch <= 'f') nib = ch - 'a' + 10;
    else return false;
    for (std::size_t k = 0; k < 4 && i + k < tags; ++k) {
      s.read[i + k] = static_cast<char>((nib >> k) & 1);
    }
  }
  if (!c.lit("\",") || !c.done()) return false;
  *out = std::move(s);
  if (deployment_hash != nullptr) *deployment_hash = dep;
  return true;
}

std::optional<JournalData> readJournal(const std::string& path,
                                       std::string* err) {
  const auto fail = [&](const std::string& why) -> std::optional<JournalData> {
    if (err != nullptr) *err = why;
    return std::nullopt;
  };
  std::ifstream is(path, std::ios::binary);
  if (!is) return fail("cannot open journal: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) return fail("empty journal: " + path);

  // Split into lines, remembering byte offsets and whether each line was
  // newline-terminated (an unterminated final line is a torn write).
  struct Line {
    std::size_t begin;
    std::size_t end;  // exclusive of '\n'
    bool terminated;
  };
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back({pos, text.size(), false});
      break;
    }
    lines.push_back({pos, nl, true});
    pos = nl + 1;
  }

  JournalData data;
  const std::string_view header_line(text.data() + lines[0].begin,
                                     lines[0].end - lines[0].begin);
  if (!lines[0].terminated || !decodeHeader(header_line, &data.header)) {
    return fail("missing or corrupt journal header");
  }
  if (data.header.version != 1) {
    return fail("unsupported journal version " +
                std::to_string(data.header.version));
  }
  data.valid_bytes = lines[0].end + 1;

  for (std::size_t k = 1; k < lines.size(); ++k) {
    const std::string_view line(text.data() + lines[k].begin,
                                lines[k].end - lines[k].begin);
    SlotEntry e;
    const bool valid = lines[k].terminated && decodeSlot(line, &e);
    if (!valid) {
      if (k + 1 == lines.size()) {
        // Exactly one torn tail record is tolerated: drop it; openAppend
        // truncates the file back to valid_bytes before continuing.
        data.dropped_torn_tail = true;
        break;
      }
      return fail("corrupt journal record after slot " +
                  std::to_string(static_cast<int>(k) - 2) + " (interior)");
    }
    if (e.slot != static_cast<int>(k) - 1) {
      return fail("journal slot sequence gap: expected " +
                  std::to_string(static_cast<int>(k) - 1) + ", found " +
                  std::to_string(e.slot));
    }
    data.slots.push_back(std::move(e));
    data.valid_bytes = lines[k].end + 1;
  }
  return data;
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool JournalWriter::create(const std::string& path, const JournalHeader& h,
                           std::string* err) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) {
    if (err != nullptr) {
      *err = "cannot create journal " + path + ": " + std::strerror(errno) +
             (errno == EEXIST ? " (resume it or remove it)" : "");
    }
    return false;
  }
  path_ = path;
  deployment_hash_ = h.deployment_hash;
  const std::string line = encodeHeader(h) + "\n";
  if (::write(fd_, line.data(), line.size()) !=
          static_cast<ssize_t>(line.size()) ||
      ::fsync(fd_) != 0) {
    if (err != nullptr) *err = "cannot write journal header: " + path;
    close();
    ::unlink(path.c_str());
    return false;
  }
  return true;
}

bool JournalWriter::openAppend(const std::string& path, const JournalHeader& h,
                               std::size_t valid_bytes, std::string* err) {
  close();
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    if (err != nullptr) {
      *err = "cannot truncate torn journal tail: " + path + ": " +
             std::strerror(errno);
    }
    return false;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    if (err != nullptr) {
      *err = "cannot open journal for append: " + path + ": " +
             std::strerror(errno);
    }
    return false;
  }
  path_ = path;
  deployment_hash_ = h.deployment_hash;
  return true;
}

bool JournalWriter::appendSlot(const SlotEntry& e) {
  if (fd_ < 0) return false;
  const std::string line = encodeSlot(e) + "\n";
  return ::write(fd_, line.data(), line.size()) ==
         static_cast<ssize_t>(line.size());
}

bool JournalWriter::writeSnapshot(const Snapshot& s) {
  if (fd_ < 0) return false;
  return writeFileAtomic(snapshotPath(), encodeSnapshot(s, deployment_hash_));
}

}  // namespace rfid::ckpt
