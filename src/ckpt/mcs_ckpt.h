// mcs_ckpt.h — journaled MCS runs: create / validate / resume in one call
// (docs/recovery.md).
//
// runMcsCheckpointed() is the policy layer above the mechanism split
// between ckpt/journal.h (record durability) and sched/mcs.h (verified
// deterministic replay).  It derives the run identity (algorithm name,
// seed, deployment hash, fault-plan fingerprint), validates any existing
// journal against it, loads the sidecar snapshot for the boundary
// cross-check, and hands the driver a writer opened in the right mode:
//
//   * fresh run:   create the journal (refusing to clobber an existing
//                  one — resume it or remove it explicitly);
//   * resume:      readJournal() (tolerating exactly one torn tail
//                  record), fail closed on any identity mismatch or
//                  interior corruption, truncate the tail, and append.
//
// The resumed run replays the committed prefix through the live loop and
// is bit-identical to an uninterrupted run — schedules, McsResult, and
// exported metrics JSON alike.
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/journal.h"
#include "core/system.h"
#include "sched/mcs.h"
#include "sched/scheduler.h"

namespace rfid::ckpt {

/// FNV-1a over the canonical CSV serialization (workload/saveDeployment):
/// the deployment identity recorded in journal headers and snapshots.
std::uint64_t deploymentHash(const core::System& sys);

struct CheckpointSetup {
  /// Journal path; the snapshot rides at `<path>.snap`.
  std::string path;
  /// Commits between read-state snapshots (<= 0 disables snapshots).
  int snapshot_every = 64;
  /// Resume an existing journal; a missing or invalid journal is an error.
  bool resume = false;
  /// Resume when a journal exists, start fresh otherwise (bench harnesses:
  /// rerunning a killed sweep picks up where it died with no flag change).
  bool auto_resume = false;
  /// Scenario seed recorded in (and checked against) the journal header.
  std::uint64_t seed = 0;
};

struct CheckpointedRun {
  sched::McsResult result;
  /// True when an existing journal was validated and replayed.
  bool resumed = false;
  /// Committed slots re-verified from the journal (== result.replayed_slots).
  int replayed_slots = 0;
  /// False on any fail-closed condition: unreadable/corrupt journal,
  /// identity mismatch, replay divergence, or journal-append IO failure.
  /// `result` is meaningless when !ok.
  bool ok = true;
  std::string error;
};

/// Runs the covering-schedule loop with crash-safe journaling per `setup`.
/// `opt.journal` / `opt.resume` are overwritten; every other McsOptions
/// field (budget included) passes through to the driver.  With an empty
/// `setup.path` this is exactly runCoveringSchedule(sys, scheduler, opt).
CheckpointedRun runMcsCheckpointed(core::System& sys,
                                   sched::OneShotScheduler& scheduler,
                                   sched::McsOptions opt,
                                   const CheckpointSetup& setup);

}  // namespace rfid::ckpt
