#include "ckpt/mcs_ckpt.h"

#include <fstream>
#include <sstream>

#include "fault/fault_plan.h"
#include "workload/io.h"

namespace rfid::ckpt {

std::uint64_t deploymentHash(const core::System& sys) {
  std::ostringstream os;
  workload::saveDeployment(os, sys);
  return fnv1a(os.str());
}

namespace {

CheckpointedRun failClosed(std::string error) {
  CheckpointedRun run;
  run.ok = false;
  run.error = std::move(error);
  return run;
}

/// Names the first identity field that disagrees, for an actionable error.
std::string describeHeaderMismatch(const JournalHeader& want,
                                   const JournalHeader& got) {
  if (got.version != want.version) return "journal version mismatch";
  if (got.algo != want.algo) {
    return "algorithm mismatch: journal records '" + got.algo +
           "', this run uses '" + want.algo + "'";
  }
  if (got.seed != want.seed) return "seed mismatch";
  if (got.deployment_hash != want.deployment_hash) {
    return "deployment mismatch: journal belongs to a different deployment";
  }
  if (got.fault_hash != want.fault_hash) {
    return "fault-plan mismatch: journal recorded a different fault script";
  }
  return "journal header mismatch";
}

/// Loads `<path>.snap` if present, valid, and consistent with this run:
/// right deployment hash and a slot the journal actually reaches.  Anything
/// else is ignored — the journal is the source of truth and the snapshot
/// only adds a redundant boundary cross-check.
std::optional<Snapshot> loadSnapshot(const std::string& snap_path,
                                     std::uint64_t deployment_hash,
                                     int committed_slots) {
  std::ifstream is(snap_path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  Snapshot snap;
  std::uint64_t dep = 0;
  if (!decodeSnapshot(buf.str(), &snap, &dep)) return std::nullopt;
  if (dep != deployment_hash) return std::nullopt;
  if (snap.slot <= 0 || snap.slot > committed_slots) return std::nullopt;
  return snap;
}

}  // namespace

CheckpointedRun runMcsCheckpointed(core::System& sys,
                                   sched::OneShotScheduler& scheduler,
                                   sched::McsOptions opt,
                                   const CheckpointSetup& setup) {
  opt.journal = nullptr;
  opt.resume = nullptr;
  if (setup.path.empty()) {
    CheckpointedRun run;
    run.result = sched::runCoveringSchedule(sys, scheduler, opt);
    return run;
  }

  JournalHeader header;
  header.algo = scheduler.name();
  header.seed = setup.seed;
  header.deployment_hash = deploymentHash(sys);
  header.fault_hash =
      opt.faults != nullptr ? opt.faults->fingerprint() : 0;

  JournalWriter writer;
  writer.snapshot_every = setup.snapshot_every;

  JournalData data;
  bool resuming = false;
  std::string err;
  const bool exists = static_cast<bool>(std::ifstream(setup.path));
  if ((setup.resume || setup.auto_resume) && exists) {
    std::optional<JournalData> loaded = readJournal(setup.path, &err);
    if (!loaded.has_value()) return failClosed(err);
    if (!(loaded->header == header)) {
      return failClosed(describeHeaderMismatch(header, loaded->header));
    }
    data = std::move(*loaded);
    data.snapshot =
        loadSnapshot(setup.path + ".snap", header.deployment_hash,
                     static_cast<int>(data.slots.size()));
    if (!writer.openAppend(setup.path, header, data.valid_bytes, &err)) {
      return failClosed(err);
    }
    resuming = true;
  } else if (setup.resume) {
    return failClosed("cannot resume: no journal at " + setup.path);
  } else {
    // Fresh run.  create() itself refuses to clobber an existing journal
    // (O_EXCL), which turns "forgot --resume" into a loud error instead of
    // a silently discarded run history.
    if (!writer.create(setup.path, header, &err)) return failClosed(err);
  }

  opt.journal = &writer;
  opt.resume = resuming ? &data : nullptr;

  CheckpointedRun run;
  run.resumed = resuming;
  run.result = sched::runCoveringSchedule(sys, scheduler, opt);
  run.replayed_slots = run.result.replayed_slots;
  if (run.result.stop == sched::McsStop::kJournalError) {
    run.ok = false;
    run.error = "journal write failed at slot " +
                std::to_string(run.result.slots) + " (disk full?)";
  } else if (run.result.stop == sched::McsStop::kReplayMismatch) {
    run.ok = false;
    run.error =
        "replay diverged from journal at slot " +
        std::to_string(run.result.replayed_slots) +
        " (journal was recorded by a different run configuration?)";
  }
  return run;
}

}  // namespace rfid::ckpt
