// atomic_file.h — torn-file-free writes (docs/recovery.md).
//
// Every durable artifact this repo writes for *other* runs to consume —
// deployments shared between site surveys, checkpoint snapshots, resumable
// journals — must never be observable in a half-written state: a reader
// that opens the path sees either the previous complete content or the new
// complete content, nothing in between.  The standard POSIX recipe:
//
//   write <path>.tmp  →  fsync(tmp)  →  rename(tmp, path)  →  fsync(dir)
//
// rename(2) is atomic within a filesystem, fsync-before-rename orders the
// data ahead of the name change, and the directory fsync persists the
// rename itself.  A crash at any point leaves either the old file (plus at
// worst a stale .tmp, which writers overwrite) or the new file.
#pragma once

#include <string>
#include <string_view>

namespace rfid::ckpt {

/// Atomically replaces `path` with `content`.  On failure returns false,
/// fills `*err` (when given) with a description naming the failing step,
/// and removes the temporary file best-effort; `path` itself is never left
/// torn.  The temporary lives at `path + ".tmp"` in the same directory so
/// the rename cannot cross filesystems.
bool writeFileAtomic(const std::string& path, std::string_view content,
                     std::string* err = nullptr);

}  // namespace rfid::ckpt
