#include "ckpt/budget.h"

namespace rfid::ckpt {

const char* budgetStopName(BudgetStop s) {
  switch (s) {
    case BudgetStop::kNone: return "none";
    case BudgetStop::kSlotCap: return "slot-cap";
    case BudgetStop::kDeadline: return "deadline";
    case BudgetStop::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace rfid::ckpt
