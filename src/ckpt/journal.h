// journal.h — crash-safe journaled MCS execution (docs/recovery.md).
//
// The MCS driver appends one JSONL record per *committed* slot to an
// append-only journal, so a killed process loses at most the slot it was
// writing.  Each record carries everything the resume validator needs to
// re-verify a deterministic replay: the proposed active set, the tags
// actually served, the fault referee's verdicts (crashed / re-planned /
// missed / ideal counterfactual), the fault-plan epoch, and the scheduler's
// state fingerprint (its RNG cursor for the stateful algorithms), plus a
// CRC32 over the record bytes.
//
// Durability model: records are written with a single write(2) each and no
// per-record fsync — page-cache writes survive SIGKILL of the process
// (fsync only buys power-loss durability, which slot records do not need).
// A crash can therefore tear at most the final record; readJournal()
// tolerates *exactly one* torn tail record by dropping it and fails closed
// on any interior corruption, header damage, or slot-sequence gap.
// Snapshots of the read-state bitmap ride beside the journal at
// `<path>.snap`, written atomically (tmp + fsync + rename,
// ckpt/atomic_file.h) every `snapshot_every` commits, and are cross-checked
// against the replayed state at their slot boundary.
//
// Resume contract (enforced by sched/runCoveringSchedule +
// ckpt/mcs_ckpt.h): a journal-resumed run replays the committed prefix
// through the exact live code path — same schedule() calls, same referee
// evaluations, same metric bumps — verifying each slot against its record,
// then continues appending.  Resumed results are therefore bit-identical
// to an uninterrupted run, including the exported metrics JSON.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rfid::ckpt {

/// FNV-1a over bytes; used for the deployment / fault-plan identity hashes
/// recorded in the journal header.
std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t h = 1469598103934665603ull);

/// CRC32 (IEEE, reflected) — the per-record checksum.
std::uint32_t crc32(std::string_view bytes);

/// Run identity, written as the first journal record and re-derived at
/// resume time; any mismatch fails closed (the journal belongs to a
/// different deployment / algorithm / fault plan and replaying it would
/// silently produce garbage).
struct JournalHeader {
  int version = 1;
  std::string algo;                   // OneShotScheduler::name()
  std::uint64_t seed = 0;             // scenario / scheduler seed
  std::uint64_t deployment_hash = 0;  // fnv1a over the CSV serialization
  std::uint64_t fault_hash = 0;       // fault::FaultPlan::fingerprint()

  bool operator==(const JournalHeader&) const = default;
};

/// One committed MCS slot.
struct SlotEntry {
  int slot = 0;             // q, the slot index (dense from 0)
  std::vector<int> active;  // the set the scheduler proposed
  std::vector<int> served;  // tags actually marked read this slot
  // Fault-referee verdicts (all zero on clean runs).
  int crashed = 0;
  int replanned = 0;
  int missed = 0;
  int ideal = 0;   // no-fault counterfactual of the proposal
  bool faulty = false;
  bool lost = false;
  int epoch = 0;            // fault::FaultPlan::epochAt(slot)
  std::uint64_t fp = 0;     // scheduler state fingerprint / RNG cursor

  bool operator==(const SlotEntry&) const = default;
};

/// Atomic snapshot of the read-state bitmap after `slot` committed slots.
struct Snapshot {
  int slot = 0;
  std::vector<char> read;  // one byte per tag, 0 / 1
};

/// A validated journal: the header, every committed slot, and whether a
/// torn tail record was dropped.  `valid_bytes` is the byte length of the
/// valid prefix — openAppend() truncates the file there before appending.
struct JournalData {
  JournalHeader header;
  std::vector<SlotEntry> slots;
  bool dropped_torn_tail = false;
  std::size_t valid_bytes = 0;
  /// Loaded from `<path>.snap` when present and valid (mcs_ckpt.cpp).
  std::optional<Snapshot> snapshot;
};

// ---- record codecs (exposed for tests / tooling) ----

std::string encodeHeader(const JournalHeader& h);
std::string encodeSlot(const SlotEntry& e);
/// `line` excludes the trailing newline.  Returns false on any deviation
/// from the canonical serialization, including a CRC mismatch.
bool decodeHeader(std::string_view line, JournalHeader* out);
bool decodeSlot(std::string_view line, SlotEntry* out);

std::string encodeSnapshot(const Snapshot& s, std::uint64_t deployment_hash);
bool decodeSnapshot(std::string_view text, Snapshot* out,
                    std::uint64_t* deployment_hash);

/// Parses and validates a journal file.  Fails closed (nullopt + *err) on:
/// unreadable file, missing or corrupt header, any interior record failing
/// its CRC or codec, or a slot-sequence gap.  A single invalid *final*
/// record is treated as a torn tail and dropped.
std::optional<JournalData> readJournal(const std::string& path,
                                       std::string* err = nullptr);

/// Append-only journal writer.  Not thread-safe; one writer per run.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates a fresh journal and writes + fsyncs the header.  Fails closed
  /// if `path` already exists (refuse to clobber another run's journal —
  /// callers resume it or remove it explicitly).
  bool create(const std::string& path, const JournalHeader& h,
              std::string* err = nullptr);

  /// Opens a previously validated journal for appending, truncating the
  /// torn tail (everything past `valid_bytes`) first.
  bool openAppend(const std::string& path, const JournalHeader& h,
                  std::size_t valid_bytes, std::string* err = nullptr);

  /// Appends one committed slot (a single write(2)).
  bool appendSlot(const SlotEntry& e);

  /// True when a snapshot is due after `committed` slots.
  bool snapshotDue(int committed) const {
    return snapshot_every > 0 && committed > 0 &&
           committed % snapshot_every == 0;
  }
  /// Atomically replaces `<path>.snap`.
  bool writeSnapshot(const Snapshot& s);

  const std::string& path() const { return path_; }
  std::string snapshotPath() const { return path_ + ".snap"; }
  bool ok() const { return fd_ >= 0; }
  void close();

  /// Commits between snapshots (0 disables snapshots).
  int snapshot_every = 64;

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t deployment_hash_ = 0;
};

}  // namespace rfid::ckpt
